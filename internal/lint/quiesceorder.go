package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"pmemlog/internal/lint/flow"
)

// Quiesceorder mirrors the log-buffer-drain-before-snapshot rule: commit
// returns as soon as the commit record reaches the (battery-backed in
// hardware, volatile here) log write buffer, so a process that persists
// the DIMM image without first draining the controller's buffers can
// write an image in which an acknowledged transaction's commit record is
// missing — recovery would roll the acked write back. Every path from a
// root function's entry to an image-persisting call must therefore pass
// a System.Quiesce — directly, or inside a helper that is guaranteed to
// drain (shard.save). Crash tooling that deliberately snapshots a
// powered-off machine annotates the save with //pmlint:allow
// quiesceorder.
var Quiesceorder = &Analyzer{
	Name: "quiesceorder",
	Doc:  "persisting a DIMM image (SaveNVRAM, Physical.WriteFile/WriteTo) requires a System.Quiesce on every path to it, helpers included",
	Run:  runQuiesceorder,
}

// quiesceExempt: the machine layers own both sides of the contract.
var quiesceExempt = map[string]bool{
	simPkg: true, // SaveNVRAM itself lives here
	memPkg: true, // WriteFile is implemented atop WriteTo here
}

// imageSink describes one image-persisting call.
type imageSink struct{ pkg, recv, name string }

var imageSinks = []imageSink{
	{simPkg, "System", "SaveNVRAM"},
	{memPkg, "Physical", "WriteFile"},
	{memPkg, "Physical", "WriteTo"},
}

func runQuiesceorder(pass *Pass) {
	for _, f := range pass.Mod.quiesceFindings() {
		if f.pkg.Types == pass.Pkg {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
}

// moduleFinding is one finding from a module-wide analysis, replayed
// into the per-package pass that owns its file.
type moduleFinding struct {
	pkg *Package
	pos token.Pos
	msg string
}

// qSite is one un-drained image persist reachable in a function.
type qSite struct {
	node ast.Node      // CFG node holding the sink
	call *ast.CallExpr // the sink call itself
	desc string        // what persists: "(System).SaveNVRAM" or "call to shard.save"
	path string        // the quiesce-free path from the function entry
	sc   scope         // scope the sink was found in
}

// quiesceFindings runs the module-wide dominance analysis once.
//
// A function is "exposed" when some path from its entry reaches an
// image-persisting call — its own, or one inside a callee that is itself
// exposed — without passing a guaranteed drain (a direct System.Quiesce
// or a call to a Must-quiesce helper). Exposure propagates up the call
// graph to a fixpoint; findings are reported only at root functions
// (no module callers), where "some caller drains first" can no longer be
// true — everything below is a library whose precondition its callers
// discharge.
func (m *Module) quiesceFindings() []moduleFinding {
	if m.qDone {
		return m.qFindings
	}
	m.qDone = true

	exposed := make(map[*types.Func]bool)
	for changed := true; changed; {
		changed = false
		for _, fi := range m.order {
			if quiesceExempt[fi.pkg.Path] || exposed[fi.obj] {
				continue
			}
			if len(m.quiesceSites(fi, exposed)) > 0 {
				exposed[fi.obj] = true
				changed = true
			}
		}
	}
	for _, fi := range m.order {
		if quiesceExempt[fi.pkg.Path] || !exposed[fi.obj] || len(m.callers[fi.obj]) > 0 {
			continue
		}
		for _, s := range m.quiesceSites(fi, exposed) {
			m.qFindings = append(m.qFindings, moduleFinding{
				pkg: fi.pkg,
				pos: s.call.Pos(),
				msg: s.sc.name + " persists a DIMM image via " + s.desc +
					" with no System.Quiesce on the path " + s.path +
					"; un-drained log-buffer records (acked commits) would be missing from the image",
			})
		}
	}
	return m.qFindings
}

// quiesceSites finds fi's reachable-without-drain persist sites.
func (m *Module) quiesceSites(fi *fnInfo, exposed map[*types.Func]bool) []qSite {
	info := fi.pkg.Info
	credit := func(n ast.Node) bool {
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			return false // a deferred drain runs at return, after the sink
		}
		for _, call := range callsIn(n, false) {
			if m.CallMust(info, call)&effQuiesce != 0 {
				return true
			}
		}
		return false
	}
	var sites []qSite
	for _, sc := range scopesOf(fi.decl) {
		g := m.Graph(sc.body())
		for _, b := range g.Blocks {
			for _, n := range b.Nodes {
				for _, call := range callsIn(n, false) {
					fn := calleeOf(info, call)
					var desc string
					switch {
					case primEffect(fn) == effPersistImage:
						desc = "(" + recvName(fn) + ")." + fn.Name()
					case fn != nil && exposed[fn] && m.fns[fn] != nil:
						desc = "call to " + fn.Name() + " (which persists an image)"
					default:
						continue
					}
					chain, ok := g.Reach(n, credit)
					if !ok {
						continue // every route drains first
					}
					sites = append(sites, qSite{
						node: n,
						call: call,
						desc: desc,
						path: flow.PathString(fi.pkg.Fset, chain, g.Exit),
						sc:   sc,
					})
				}
			}
		}
	}
	return sites
}

// recvName renders fn's receiver type name, "" for plain functions.
func recvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
