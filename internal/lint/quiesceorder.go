package lint

import (
	"go/ast"
	"go/token"
)

// Quiesceorder mirrors the log-buffer-drain-before-snapshot rule: commit
// returns as soon as the commit record reaches the (battery-backed in
// hardware, volatile here) log write buffer, so a process that persists
// the DIMM image without first draining the controller's buffers can
// write an image in which an acknowledged transaction's commit record is
// missing — recovery would roll the acked write back. Any call that
// persists an image must therefore be preceded by System.Quiesce in the
// same function. Crash tooling that deliberately snapshots a powered-off
// machine annotates the save with //pmlint:allow quiesceorder.
var Quiesceorder = &Analyzer{
	Name: "quiesceorder",
	Doc:  "persisting a DIMM image (SaveNVRAM, Physical.WriteFile/WriteTo) requires a preceding System.Quiesce in the same function",
	Run:  runQuiesceorder,
}

// quiesceExempt: the machine layers own both sides of the contract.
var quiesceExempt = map[string]bool{
	simPkg: true, // SaveNVRAM itself lives here
	memPkg: true, // WriteFile is implemented atop WriteTo here
}

// imageSink describes one image-persisting call.
type imageSink struct{ pkg, recv, name string }

var imageSinks = []imageSink{
	{simPkg, "System", "SaveNVRAM"},
	{memPkg, "Physical", "WriteFile"},
	{memPkg, "Physical", "WriteTo"},
}

func runQuiesceorder(pass *Pass) {
	if quiesceExempt[pass.Pkg.Path()] {
		return
	}
	for _, file := range pass.Files {
		for _, fd := range funcScopes(file) {
			checkQuiesceOrder(pass, fd)
		}
	}
}

// checkQuiesceOrder requires, for every image-persisting call, a
// System.Quiesce call lexically earlier in the same function body. This
// is a source-order approximation of dominance; it accepts a Quiesce in a
// branch the save might not follow, but catches the real failure mode —
// a save path with no drain anywhere before it.
func checkQuiesceOrder(pass *Pass, fd *ast.FuncDecl) {
	var quiesces []token.Pos
	type sink struct {
		pos  token.Pos
		recv string
		name string
	}
	var sinks []sink
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(pass.Info, call)
		if isFunc(fn, simPkg, "System", "Quiesce") {
			quiesces = append(quiesces, call.Pos())
			return true
		}
		for _, s := range imageSinks {
			if isFunc(fn, s.pkg, s.recv, s.name) {
				sinks = append(sinks, sink{pos: call.Pos(), recv: s.recv, name: s.name})
				break
			}
		}
		return true
	})
	for _, s := range sinks {
		drained := false
		for _, q := range quiesces {
			if q < s.pos {
				drained = true
				break
			}
		}
		if !drained {
			pass.Reportf(s.pos,
				"%s persists a DIMM image via (%s).%s without a preceding System.Quiesce; un-drained log-buffer records (acked commits) would be missing from the image",
				funcName(fd), s.recv, s.name)
		}
	}
}
