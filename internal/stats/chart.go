package stats

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// BarChart renders a horizontal ASCII bar chart — the terminal rendition
// of the paper's figures. Values are scaled so the longest bar spans
// `width` cells; a reference line (e.g. the unsafe-base 1.0 normalization)
// is marked with '|' inside the bars when it falls within range.
func BarChart(title string, labels []string, values []float64, reference float64, width int) string {
	if width <= 0 {
		width = 50
	}
	// Non-finite samples (NaN, ±Inf) would poison the scale and the
	// int conversions below, so they are drawn as zero-length bars and
	// excluded from the max.
	finite := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return 0
		}
		return v
	}
	var max float64
	for _, v := range values {
		if fv := finite(v); fv > max {
			max = fv
		}
	}
	if fr := finite(reference); fr > max {
		max = fr
	}
	if max == 0 {
		// All-zero (or all-non-finite) input: keep the frame renderable
		// with empty bars instead of dividing by zero.
		max = 1
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	// A label wider than the chart itself would push every bar off the
	// terminal; truncate to the bar width with a marker instead.
	clip := func(l string) string {
		if len(l) <= width {
			return l
		}
		return l[:width-1] + "~"
	}
	if labelW > width {
		labelW = width
	}
	refCell := -1
	if fr := finite(reference); fr > 0 {
		refCell = int(fr / max * float64(width))
		if refCell >= width {
			refCell = width - 1
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, l := range labels {
		if i >= len(values) {
			break
		}
		n := int(finite(values[i]) / max * float64(width))
		if n > width {
			n = width
		}
		if n < 0 {
			n = 0
		}
		row := make([]byte, width)
		for c := range row {
			switch {
			case c < n:
				row[c] = '#'
			case c == refCell:
				row[c] = '|'
			default:
				row[c] = ' '
			}
		}
		if refCell >= 0 && refCell < n {
			row[refCell] = '|'
		}
		fmt.Fprintf(&b, "%-*s %s %s\n", labelW, clip(l), string(row),
			strconv.FormatFloat(values[i], 'f', 3, 64))
	}
	return b.String()
}

// ChartColumn renders one column of a Table as a bar chart, using the
// first column as labels. Non-numeric cells are skipped.
func (t *Table) ChartColumn(col int, reference float64, width int) string {
	if col <= 0 || col >= len(t.Header) {
		return ""
	}
	var labels []string
	var values []float64
	for _, row := range t.Rows {
		if col >= len(row) {
			continue
		}
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			continue
		}
		labels = append(labels, row[0])
		values = append(values, v)
	}
	return BarChart(t.Header[col]+" (| = "+strconv.FormatFloat(reference, 'f', 1, 64)+")",
		labels, values, reference, width)
}
