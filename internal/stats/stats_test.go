package stats

import (
	"math"
	"strings"
	"testing"
)

func TestRunDerivedMetrics(t *testing.T) {
	r := Run{Cycles: 1000, Instructions: 1500, Transactions: 50, Seconds: 0.5,
		MemEnergyPJ: 200, NVRAMWriteBytes: 4000}
	if got := r.IPC(); got != 1.5 {
		t.Errorf("IPC = %v", got)
	}
	if got := r.Throughput(); got != 100 {
		t.Errorf("throughput = %v", got)
	}
	base := Run{Cycles: 2000, Instructions: 3000, Transactions: 50, Seconds: 1,
		MemEnergyPJ: 400, NVRAMWriteBytes: 8000}
	if got := r.Speedup(base); got != 2 {
		t.Errorf("speedup = %v", got)
	}
	if got := r.IPCSpeedup(base); got != 1 {
		t.Errorf("IPC speedup = %v", got)
	}
	if got := r.InstrRatio(base); got != 0.5 {
		t.Errorf("instr ratio = %v", got)
	}
	if got := r.EnergyReduction(base); got != 2 {
		t.Errorf("energy reduction = %v", got)
	}
	if got := r.TrafficReduction(base); got != 2 {
		t.Errorf("traffic reduction = %v", got)
	}
}

func TestZeroDenominators(t *testing.T) {
	var zero Run
	if zero.IPC() != 0 || zero.Throughput() != 0 {
		t.Error("zero run produced nonzero metrics")
	}
	r := Run{Transactions: 1, Seconds: 1}
	if got := r.Speedup(zero); got != 0 {
		t.Errorf("speedup vs zero base = %v", got)
	}
}

func TestGeomean(t *testing.T) {
	got := Geomean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("geomean(1,4) = %v", got)
	}
	if Geomean(nil) != 0 {
		t.Error("geomean(nil) != 0")
	}
	// Zeros are skipped, not poisoning the mean.
	got = Geomean([]float64{0, 2, 8})
	if math.Abs(got-4) > 1e-12 {
		t.Errorf("geomean(0,2,8) = %v, want 4", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Header: []string{"bench", "speedup"}}
	tb.Add("hash", 1.86)
	tb.Add("rbtree", 2)
	out := tb.String()
	if !strings.Contains(out, "hash") || !strings.Contains(out, "1.860") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Errorf("table has %d lines", len(lines))
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "bench,speedup\n") || !strings.Contains(csv, "hash,1.860") {
		t.Errorf("csv output:\n%s", csv)
	}
}

func TestRunSetUnsafeBase(t *testing.T) {
	s := NewRunSet()
	s.Put(Run{Benchmark: "hash", Mode: "sw-ulog", Threads: 1, Transactions: 10, Seconds: 1})
	s.Put(Run{Benchmark: "hash", Mode: "sw-rlog", Threads: 1, Transactions: 20, Seconds: 1})
	base, ok := s.UnsafeBase("hash", 1)
	if !ok || base.Mode != "sw-rlog" {
		t.Errorf("unsafe-base picked %q (ok=%v), want sw-rlog", base.Mode, ok)
	}
	// With only one variant present, it is used.
	s2 := NewRunSet()
	s2.Put(Run{Benchmark: "sps", Mode: "sw-ulog", Threads: 2, Transactions: 5, Seconds: 1})
	base2, ok := s2.UnsafeBase("sps", 2)
	if !ok || base2.Mode != "sw-ulog" {
		t.Errorf("single-variant unsafe-base: %q ok=%v", base2.Mode, ok)
	}
	if _, ok := s2.UnsafeBase("nosuch", 1); ok {
		t.Error("unsafe-base for missing benchmark reported ok")
	}
}

func TestRunSetBenchmarks(t *testing.T) {
	s := NewRunSet()
	s.Put(Run{Benchmark: "b", Mode: "m", Threads: 1})
	s.Put(Run{Benchmark: "a", Mode: "m", Threads: 1})
	s.Put(Run{Benchmark: "a", Mode: "m2", Threads: 2})
	got := s.Benchmarks()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("benchmarks = %v", got)
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("title", []string{"a", "bb"}, []float64{1, 2}, 1, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 || lines[0] != "title" {
		t.Fatalf("chart:\n%s", out)
	}
	// The longer value must render a longer bar.
	if strings.Count(lines[1], "#") >= strings.Count(lines[2], "#") {
		t.Errorf("bars not proportional:\n%s", out)
	}
	// The reference marker appears.
	if !strings.Contains(out, "|") {
		t.Error("reference marker missing")
	}
	// Degenerate inputs do not panic.
	_ = BarChart("", nil, nil, 0, 0)
	_ = BarChart("", []string{"x"}, []float64{0}, 0, 10)
}

func TestChartColumn(t *testing.T) {
	tb := Table{Header: []string{"bench", "speedup"}}
	tb.Add("hash", 1.86)
	tb.Add("rbtree", 0.93)
	out := tb.ChartColumn(1, 1.0, 30)
	if !strings.Contains(out, "hash") || !strings.Contains(out, "1.860") {
		t.Errorf("chart column:\n%s", out)
	}
	if tb.ChartColumn(0, 1, 10) != "" || tb.ChartColumn(9, 1, 10) != "" {
		t.Error("invalid column accepted")
	}
}
