package stats

import (
	"math"
	"strings"
	"testing"
)

func TestPercentileEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		vals []uint64
		p    float64
		want uint64
	}{
		{"empty", nil, 50, 0},
		{"empty zero-length", []uint64{}, 99, 0},
		{"single", []uint64{7}, 50, 7},
		{"p zero", []uint64{3, 1, 2}, 0, 1},
		{"p hundred", []uint64{3, 1, 2}, 100, 3},
		{"p over hundred clamps", []uint64{3, 1, 2}, 250, 3},
		{"p negative clamps", []uint64{3, 1, 2}, -10, 1},
		{"p NaN clamps to zero", []uint64{3, 1, 2}, math.NaN(), 1},
		{"p Inf clamps", []uint64{3, 1, 2}, math.Inf(1), 3},
		{"median of four", []uint64{40, 10, 30, 20}, 50, 20},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Percentile(tc.vals, tc.p); got != tc.want {
				t.Fatalf("Percentile(%v, %v) = %d, want %d", tc.vals, tc.p, got, tc.want)
			}
		})
	}
}

func TestBarChartEdgeCases(t *testing.T) {
	cases := []struct {
		name      string
		labels    []string
		values    []float64
		reference float64
		width     int
		check     func(t *testing.T, out string)
	}{
		{
			name:   "all zero values render empty bars",
			labels: []string{"a", "b"}, values: []float64{0, 0},
			width: 10,
			check: func(t *testing.T, out string) {
				if strings.Contains(out, "#") {
					t.Fatalf("zero-valued chart drew bars:\n%s", out)
				}
				if !strings.Contains(out, "0.000") {
					t.Fatalf("values not printed:\n%s", out)
				}
			},
		},
		{
			name:   "NaN and Inf values do not poison the scale",
			labels: []string{"nan", "inf", "neginf", "real"},
			values: []float64{math.NaN(), math.Inf(1), math.Inf(-1), 2},
			width:  8,
			check: func(t *testing.T, out string) {
				lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
				if len(lines) != 4 {
					t.Fatalf("want 4 rows, got %d:\n%s", len(lines), out)
				}
				// The finite value owns the scale: its bar is full width.
				if !strings.Contains(lines[3], strings.Repeat("#", 8)) {
					t.Fatalf("finite row lost its bar:\n%s", out)
				}
				for _, l := range lines[:3] {
					if strings.Contains(l, "#") {
						t.Fatalf("non-finite row drew a bar: %q", l)
					}
				}
			},
		},
		{
			name:   "label wider than chart is clipped",
			labels: []string{"this-label-is-much-wider-than-the-chart", "b"},
			values: []float64{1, 2},
			width:  10,
			check: func(t *testing.T, out string) {
				if strings.Contains(out, "this-label-is-much-wider-than-the-chart") {
					t.Fatalf("oversized label not clipped:\n%s", out)
				}
				if !strings.Contains(out, "this-labe~") {
					t.Fatalf("clipped label marker missing:\n%s", out)
				}
			},
		},
		{
			name:   "more labels than values stops cleanly",
			labels: []string{"a", "b", "c"}, values: []float64{1},
			width: 10,
			check: func(t *testing.T, out string) {
				if n := strings.Count(out, "\n"); n != 1 {
					t.Fatalf("want 1 row, got %d:\n%s", n, out)
				}
			},
		},
		{
			name:   "zero width falls back to default",
			labels: []string{"a"}, values: []float64{1},
			width: 0,
			check: func(t *testing.T, out string) {
				if !strings.Contains(out, strings.Repeat("#", 50)) {
					t.Fatalf("default width not applied:\n%s", out)
				}
			},
		},
		{
			name:   "reference beyond data sets the scale",
			labels: []string{"a"}, values: []float64{1},
			reference: 4, width: 8,
			check: func(t *testing.T, out string) {
				// 1/4 of 8 cells = 2 bar cells, reference tick at the end.
				if !strings.Contains(out, "##") || strings.Contains(out, "###") {
					t.Fatalf("bar not scaled to the reference:\n%s", out)
				}
				if !strings.Contains(out, "|") {
					t.Fatalf("reference tick missing:\n%s", out)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := BarChart("", tc.labels, tc.values, tc.reference, tc.width)
			tc.check(t, out)
		})
	}
}
