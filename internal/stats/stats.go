// Package stats collects per-run metrics and renders the paper-style
// normalized tables the experiment harness prints (Figures 6-11 report
// everything normalized to the unsafe-base configuration).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Run is the metric bundle produced by one simulation. The JSON tags make
// runs machine-readable across PRs (cmd/experiments -json) and snapshotable
// by the pmserver stats endpoint.
type Run struct {
	Benchmark string `json:"benchmark"`
	Mode      string `json:"mode"`
	Threads   int    `json:"threads"`

	Cycles       uint64  `json:"cycles"`       // wall-clock cycles (max over threads)
	Instructions uint64  `json:"instructions"` // total retired instructions
	Transactions uint64  `json:"transactions"` // committed transactions
	Seconds      float64 `json:"seconds"`

	NVRAMReadBytes  uint64 `json:"nvram_read_bytes"`
	NVRAMWriteBytes uint64 `json:"nvram_write_bytes"`
	LogWriteBytes   uint64 `json:"log_write_bytes"` // portion of NVRAM writes carrying log records
	// ResidualDirtyBytes is the steady-state correction for finite runs:
	// dirty lines still cached at the end are deferred write-backs that a
	// longer run would have paid; traffic comparisons include them so that
	// designs which defer write-backs (no-force) are not falsely penalized
	// against designs that never write anything back (unsafe baselines).
	ResidualDirtyBytes uint64 `json:"residual_dirty_bytes"`

	MemEnergyPJ  float64 `json:"mem_energy_pj"`
	ProcEnergyPJ float64 `json:"proc_energy_pj"`

	// Transaction commit latencies in cycles (begin to commit-return);
	// percentiles are the storage-facing view of fence/flush costs.
	TxnLatencyP50 uint64 `json:"txn_latency_p50"`
	TxnLatencyP99 uint64 `json:"txn_latency_p99"`
	TxnLatencyMax uint64 `json:"txn_latency_max"`

	L1Hits       uint64 `json:"l1_hits"`
	L1Misses     uint64 `json:"l1_misses"`
	L2Hits       uint64 `json:"l2_hits"`
	L2Misses     uint64 `json:"l2_misses"`
	StallCycles  uint64 `json:"stall_cycles"`
	FwbScans     uint64 `json:"fwb_scans"`
	FwbForced    uint64 `json:"fwb_forced"`
	LogAppends   uint64 `json:"log_appends"`
	LogBufStalls uint64 `json:"log_buf_stalls"`
	// LogTruncated / LogGrows count circular-log head advances and log_grow
	// migrations — the "log wrap" pressure signal a service operator watches.
	LogTruncated uint64 `json:"log_truncated"`
	LogGrows     uint64 `json:"log_grows"`
}

// IPC returns instructions per cycle.
func (r Run) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// Throughput returns committed transactions per second.
func (r Run) Throughput() float64 {
	if r.Seconds == 0 {
		return 0
	}
	return float64(r.Transactions) / r.Seconds
}

// Speedup returns r's throughput relative to base's.
func (r Run) Speedup(base Run) float64 { return ratio(r.Throughput(), base.Throughput()) }

// IPCSpeedup returns r's IPC relative to base's.
func (r Run) IPCSpeedup(base Run) float64 { return ratio(r.IPC(), base.IPC()) }

// InstrRatio returns r's instruction count relative to base's.
func (r Run) InstrRatio(base Run) float64 {
	return ratio(float64(r.Instructions), float64(base.Instructions))
}

// EnergyReduction returns base's memory dynamic energy divided by r's
// (higher is better, as plotted in Figure 8).
func (r Run) EnergyReduction(base Run) float64 { return ratio(base.MemEnergyPJ, r.MemEnergyPJ) }

// TotalWriteBytes is NVRAM write traffic including the residual-dirty
// steady-state correction.
func (r Run) TotalWriteBytes() uint64 { return r.NVRAMWriteBytes + r.ResidualDirtyBytes }

// TrafficReduction returns base's NVRAM write bytes divided by r's
// (higher is better, Figure 9).
func (r Run) TrafficReduction(base Run) float64 {
	return ratio(float64(base.TotalWriteBytes()), float64(r.TotalWriteBytes()))
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Percentile returns the p-th percentile (0..100) of the values; the
// slice is sorted in place. An empty slice yields 0, and p is clamped
// to [0, 100] before indexing — int(NaN) is platform-dependent in Go,
// so NaN is pinned to 0 explicitly rather than fed to the conversion.
func Percentile(vals []uint64, p float64) uint64 {
	if len(vals) == 0 {
		return 0
	}
	if math.IsNaN(p) || p < 0 {
		p = 0
	} else if p > 100 {
		p = 100
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	idx := int(p / 100 * float64(len(vals)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	return vals[idx]
}

// Geomean returns the geometric mean of strictly positive values; zeros
// and negatives are skipped.
func Geomean(vals []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Table renders aligned rows for terminal output.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends one row, formatting each cell.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case uint64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// RunSet indexes runs by (benchmark, mode, threads) for normalization.
type RunSet struct {
	runs map[string]Run
}

// NewRunSet creates an empty set.
func NewRunSet() *RunSet { return &RunSet{runs: make(map[string]Run)} }

func key(bench, mode string, threads int) string {
	return fmt.Sprintf("%s|%s|%d", bench, mode, threads)
}

// Put stores a run.
func (s *RunSet) Put(r Run) { s.runs[key(r.Benchmark, r.Mode, r.Threads)] = r }

// Get retrieves a run.
func (s *RunSet) Get(bench, mode string, threads int) (Run, bool) {
	r, ok := s.runs[key(bench, mode, threads)]
	return r, ok
}

// Runs returns every stored run, sorted by (benchmark, mode, threads) —
// the stable order machine-readable dumps are written in.
func (s *RunSet) Runs() []Run {
	out := make([]Run, 0, len(s.runs))
	for _, r := range s.runs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Benchmark != out[j].Benchmark {
			return out[i].Benchmark < out[j].Benchmark
		}
		if out[i].Mode != out[j].Mode {
			return out[i].Mode < out[j].Mode
		}
		return out[i].Threads < out[j].Threads
	})
	return out
}

// Benchmarks lists the distinct benchmark names, sorted.
func (s *RunSet) Benchmarks() []string {
	seen := map[string]bool{}
	for _, r := range s.runs {
		seen[r.Benchmark] = true
	}
	out := make([]string, 0, len(seen))
	for b := range seen {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// UnsafeBase returns the better of the two unsafe software-logging runs
// (the paper's unsafe-base dashed line is "the best case achieved between
// either redo or undo logging for that benchmark").
func (s *RunSet) UnsafeBase(bench string, threads int) (Run, bool) {
	u, okU := s.Get(bench, "sw-ulog", threads)
	r, okR := s.Get(bench, "sw-rlog", threads)
	switch {
	case okU && okR:
		if u.Throughput() >= r.Throughput() {
			return u, true
		}
		return r, true
	case okU:
		return u, true
	case okR:
		return r, true
	}
	return Run{}, false
}
