package mem

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestImageRoundTrip(t *testing.T) {
	p := NewPhysical(0x1000, 64<<10)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		a := Addr(0x1000 + rng.Intn(64<<10)&^7)
		p.WriteWord(a, Word(rng.Uint64()))
	}
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadPhysical(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(q) {
		t.Fatal("round-tripped image differs")
	}
}

func TestImageSparseness(t *testing.T) {
	p := NewPhysical(0, 1<<20) // 1 MB, almost all zero
	p.WriteWord(0x500, 1)
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 4096 {
		t.Errorf("sparse 1 MB image serialized to %d bytes", buf.Len())
	}
}

func TestImageRejectsGarbage(t *testing.T) {
	if _, err := ReadPhysical(bytes.NewReader([]byte("not an image"))); err == nil {
		t.Error("garbage accepted")
	}
	var buf bytes.Buffer
	p := NewPhysical(0, 4096)
	p.WriteWord(0, 1)
	p.WriteTo(&buf)
	// Truncate mid-stream.
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := ReadPhysical(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated image accepted")
	}
}

func TestCopyFrom(t *testing.T) {
	a := NewPhysical(0x1000, 4096)
	b := NewPhysical(0x1000, 4096)
	a.WriteWord(0x1100, 9)
	if err := b.CopyFrom(a); err != nil {
		t.Fatal(err)
	}
	if b.ReadWord(0x1100) != 9 {
		t.Error("copy lost data")
	}
	c := NewPhysical(0x2000, 4096)
	if err := c.CopyFrom(a); err == nil {
		t.Error("geometry mismatch accepted")
	}
}
