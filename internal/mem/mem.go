// Package mem provides the basic memory primitives shared by every layer of
// the simulated persistent memory system: physical addresses, words, cache
// lines, and a flat byte-addressable physical memory.
//
// The paper models a 64-bit machine with 64 B cache lines and 8 B words;
// log records carry 48-bit physical addresses. Those constants live here so
// that the cache hierarchy, the memory controller, the NVRAM device model,
// and the hardware logging engine all agree on geometry.
package mem

import "fmt"

const (
	// WordSize is the size of a machine word in bytes. Log records hold a
	// one-word undo value and a one-word redo value (paper Section III-A).
	WordSize = 8
	// LineSize is the cache line size in bytes (Table II: 64 B lines).
	LineSize = 64
	// WordsPerLine is the number of words in one cache line.
	WordsPerLine = LineSize / WordSize
	// AddrBits is the number of physical address bits carried in a log
	// record (paper Figure 3(a): 48-bit physical address field).
	AddrBits = 48
	// MaxAddr is the first address beyond the 48-bit physical space.
	MaxAddr = Addr(1) << AddrBits
)

// Addr is a physical byte address in the simulated machine.
type Addr uint64

// Line returns the address of the cache line containing a.
func (a Addr) Line() Addr { return a &^ (LineSize - 1) }

// WordAligned returns the address rounded down to a word boundary.
func (a Addr) WordAligned() Addr { return a &^ (WordSize - 1) }

// LineOffset returns the byte offset of a within its cache line.
func (a Addr) LineOffset() int { return int(a & (LineSize - 1)) }

// WordIndex returns the index of the word containing a within its line.
func (a Addr) WordIndex() int { return int(a&(LineSize-1)) / WordSize }

// IsLineAligned reports whether a is aligned to a cache line boundary.
func (a Addr) IsLineAligned() bool { return a&(LineSize-1) == 0 }

// IsWordAligned reports whether a is aligned to a word boundary.
func (a Addr) IsWordAligned() bool { return a&(WordSize-1) == 0 }

func (a Addr) String() string { return fmt.Sprintf("0x%012x", uint64(a)) }

// Word is an 8-byte machine word, the granularity of undo/redo log values.
type Word uint64

// Line is the payload of one cache line.
type Line [LineSize]byte

// Word extracts the i-th word of the line (little-endian, as on x86).
func (l *Line) Word(i int) Word {
	var w Word
	base := i * WordSize
	for b := WordSize - 1; b >= 0; b-- {
		w = w<<8 | Word(l[base+b])
	}
	return w
}

// SetWord stores w into the i-th word of the line.
func (l *Line) SetWord(i int, w Word) {
	base := i * WordSize
	for b := 0; b < WordSize; b++ {
		l[base+b] = byte(w >> (8 * b))
	}
}

// Physical is a flat byte-addressable physical memory image. It is the
// ground truth that survives simulated crashes: caches hold copies of its
// lines, and recovery rewrites it through the log. Accesses are bounds
// checked so that a buggy workload or allocator fails loudly.
type Physical struct {
	data []byte
	base Addr
}

// NewPhysical creates a physical memory of the given size starting at base.
// base and size must be line aligned.
func NewPhysical(base Addr, size uint64) *Physical {
	if !base.IsLineAligned() || size%LineSize != 0 {
		panic(fmt.Sprintf("mem: physical region %v+%d not line aligned", base, size))
	}
	if uint64(base)+size > uint64(MaxAddr) {
		panic(fmt.Sprintf("mem: physical region %v+%d exceeds %d-bit space", base, size, AddrBits))
	}
	return &Physical{data: make([]byte, size), base: base}
}

// Base returns the first address of the region.
func (p *Physical) Base() Addr { return p.base }

// Size returns the size of the region in bytes.
func (p *Physical) Size() uint64 { return uint64(len(p.data)) }

// Contains reports whether [a, a+n) lies inside the region.
func (p *Physical) Contains(a Addr, n int) bool {
	off := int64(a) - int64(p.base)
	return off >= 0 && off+int64(n) <= int64(len(p.data))
}

func (p *Physical) offset(a Addr, n int) int {
	off := int64(a) - int64(p.base)
	if off < 0 || off+int64(n) > int64(len(p.data)) {
		panic(fmt.Sprintf("mem: access %v+%d outside region [%v, %v)", a, n, p.base, p.base+Addr(len(p.data))))
	}
	return int(off)
}

// ReadLine copies the cache line containing a into dst.
func (p *Physical) ReadLine(a Addr, dst *Line) {
	off := p.offset(a.Line(), LineSize)
	copy(dst[:], p.data[off:off+LineSize])
}

// WriteLine stores src into the cache line containing a.
func (p *Physical) WriteLine(a Addr, src *Line) {
	off := p.offset(a.Line(), LineSize)
	copy(p.data[off:off+LineSize], src[:])
}

// ReadWord loads the word at the word-aligned address a.
func (p *Physical) ReadWord(a Addr) Word {
	a = a.WordAligned()
	off := p.offset(a, WordSize)
	var w Word
	for b := WordSize - 1; b >= 0; b-- {
		w = w<<8 | Word(p.data[off+b])
	}
	return w
}

// WriteWord stores w at the word-aligned address a.
func (p *Physical) WriteWord(a Addr, w Word) {
	a = a.WordAligned()
	off := p.offset(a, WordSize)
	for b := 0; b < WordSize; b++ {
		p.data[off+b] = byte(w >> (8 * b))
	}
}

// Read copies n bytes starting at a into a fresh slice.
func (p *Physical) Read(a Addr, n int) []byte {
	off := p.offset(a, n)
	out := make([]byte, n)
	copy(out, p.data[off:off+n])
	return out
}

// ReadInto copies len(dst) bytes starting at a into dst — the
// allocation-free variant of Read for hot paths that own a scratch buffer.
func (p *Physical) ReadInto(a Addr, dst []byte) {
	off := p.offset(a, len(dst))
	copy(dst, p.data[off:off+len(dst)])
}

// Write stores src starting at address a.
func (p *Physical) Write(a Addr, src []byte) {
	off := p.offset(a, len(src))
	copy(p.data[off:off+len(src)], src)
}

// Snapshot returns a deep copy of the region, used by the recovery checker
// to compare post-crash NVRAM images against an oracle.
func (p *Physical) Snapshot() *Physical {
	cp := &Physical{data: make([]byte, len(p.data)), base: p.base}
	copy(cp.data, p.data)
	return cp
}

// Equal reports whether two regions have identical base, size and contents.
func (p *Physical) Equal(o *Physical) bool {
	if p.base != o.base || len(p.data) != len(o.data) {
		return false
	}
	for i := range p.data {
		if p.data[i] != o.data[i] {
			return false
		}
	}
	return true
}
