package mem

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Physical image serialization: a compact sparse format (only non-zero
// lines are stored) so a simulated NVRAM DIMM can be written to a file and
// re-attached by a later process — letting crash/recovery demos span real
// process lifetimes, like a real persistent-memory device surviving a
// reboot.
//
// Format: magic, base, size, then (lineIndex uint64, 64 raw bytes) pairs,
// terminated by ^uint64(0).
const imageMagic = 0x53464E56 // "SFNV"

// WriteTo serializes the region sparsely.
func (p *Physical) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	put := func(v uint64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		m, err := bw.Write(buf[:])
		n += int64(m)
		return err
	}
	if err := put(imageMagic); err != nil {
		return n, err
	}
	if err := put(uint64(p.base)); err != nil {
		return n, err
	}
	if err := put(p.Size()); err != nil {
		return n, err
	}
	var zero [LineSize]byte
	for off := 0; off < len(p.data); off += LineSize {
		line := p.data[off : off+LineSize]
		if string(line) == string(zero[:]) {
			continue
		}
		if err := put(uint64(off / LineSize)); err != nil {
			return n, err
		}
		m, err := bw.Write(line)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	if err := put(^uint64(0)); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// ReadPhysical deserializes an image written by WriteTo.
func ReadPhysical(r io.Reader) (*Physical, error) {
	br := bufio.NewReader(r)
	get := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	magic, err := get()
	if err != nil {
		return nil, fmt.Errorf("mem: image header: %w", err)
	}
	if magic != imageMagic {
		return nil, fmt.Errorf("mem: bad image magic %#x", magic)
	}
	base, err := get()
	if err != nil {
		return nil, err
	}
	size, err := get()
	if err != nil {
		return nil, err
	}
	p := NewPhysical(Addr(base), size)
	for {
		idx, err := get()
		if err != nil {
			return nil, fmt.Errorf("mem: image truncated: %w", err)
		}
		if idx == ^uint64(0) {
			return p, nil
		}
		off := idx * LineSize
		if off+LineSize > size {
			return nil, fmt.Errorf("mem: image line %d outside region", idx)
		}
		if _, err := io.ReadFull(br, p.data[off:off+LineSize]); err != nil {
			return nil, fmt.Errorf("mem: image line %d: %w", idx, err)
		}
	}
}

// WriteFile persists the image to path atomically: the bytes go to a
// temporary file in the same directory, are synced, and the file is
// renamed over path — so a process killed mid-save leaves either the old
// image or the new one, never a torn file. This is the durability point
// services built on the simulated DIMM ack writes against.
func (p *Physical) WriteFile(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".img-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := p.WriteTo(f); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// ReadPhysicalFile loads an image persisted by WriteFile (or WriteTo).
func ReadPhysicalFile(path string) (*Physical, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPhysical(f)
}

// CopyFrom overwrites this region's contents with another image of the
// same geometry (re-attaching a persisted DIMM image to a fresh machine).
func (p *Physical) CopyFrom(o *Physical) error {
	if p.base != o.base || len(p.data) != len(o.data) {
		return fmt.Errorf("mem: image geometry mismatch: %v+%d vs %v+%d",
			p.base, len(p.data), o.base, len(o.data))
	}
	copy(p.data, o.data)
	return nil
}
