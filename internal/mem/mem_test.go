package mem

import (
	"testing"
	"testing/quick"
)

func TestAddrLineHelpers(t *testing.T) {
	cases := []struct {
		a          Addr
		line       Addr
		off        int
		wordIdx    int
		lineAlign  bool
		wordAlign  bool
		wordAligna Addr
	}{
		{0, 0, 0, 0, true, true, 0},
		{63, 0, 63, 7, false, false, 56},
		{64, 64, 0, 0, true, true, 64},
		{100, 64, 36, 4, false, false, 96},
		{0xfff8, 0xffc0, 56, 7, false, true, 0xfff8},
	}
	for _, c := range cases {
		if got := c.a.Line(); got != c.line {
			t.Errorf("Line(%v) = %v, want %v", c.a, got, c.line)
		}
		if got := c.a.LineOffset(); got != c.off {
			t.Errorf("LineOffset(%v) = %d, want %d", c.a, got, c.off)
		}
		if got := c.a.WordIndex(); got != c.wordIdx {
			t.Errorf("WordIndex(%v) = %d, want %d", c.a, got, c.wordIdx)
		}
		if got := c.a.IsLineAligned(); got != c.lineAlign {
			t.Errorf("IsLineAligned(%v) = %v, want %v", c.a, got, c.lineAlign)
		}
		if got := c.a.IsWordAligned(); got != c.wordAlign {
			t.Errorf("IsWordAligned(%v) = %v, want %v", c.a, got, c.wordAlign)
		}
		if got := c.a.WordAligned(); got != c.wordAligna {
			t.Errorf("WordAligned(%v) = %v, want %v", c.a, got, c.wordAligna)
		}
	}
}

func TestLineWordRoundTrip(t *testing.T) {
	var l Line
	for i := 0; i < WordsPerLine; i++ {
		l.SetWord(i, Word(0x0102030405060708*uint64(i+1)))
	}
	for i := 0; i < WordsPerLine; i++ {
		want := Word(0x0102030405060708 * uint64(i+1))
		if got := l.Word(i); got != want {
			t.Errorf("Word(%d) = %#x, want %#x", i, got, want)
		}
	}
}

func TestLineWordIsLittleEndian(t *testing.T) {
	var l Line
	l.SetWord(0, 0x1122334455667788)
	if l[0] != 0x88 || l[7] != 0x11 {
		t.Errorf("expected little-endian layout, got % x", l[:8])
	}
}

func TestPhysicalReadWrite(t *testing.T) {
	p := NewPhysical(0x1000, 4096)
	if p.Base() != 0x1000 || p.Size() != 4096 {
		t.Fatalf("geometry: base %v size %d", p.Base(), p.Size())
	}
	p.WriteWord(0x1008, 0xdeadbeefcafef00d)
	if got := p.ReadWord(0x1008); got != 0xdeadbeefcafef00d {
		t.Errorf("ReadWord = %#x", got)
	}
	// Unaligned word access is rounded down.
	if got := p.ReadWord(0x100b); got != 0xdeadbeefcafef00d {
		t.Errorf("unaligned ReadWord = %#x", got)
	}

	var ln Line
	ln.SetWord(3, 42)
	p.WriteLine(0x1100, &ln)
	var got Line
	p.ReadLine(0x1110, &got) // any address within the line works
	if got.Word(3) != 42 {
		t.Errorf("line word 3 = %d, want 42", got.Word(3))
	}

	p.Write(0x1200, []byte("hello"))
	if string(p.Read(0x1200, 5)) != "hello" {
		t.Errorf("byte round trip failed")
	}
}

func TestPhysicalContains(t *testing.T) {
	p := NewPhysical(0x1000, 256)
	if !p.Contains(0x1000, 256) {
		t.Error("Contains(full region) = false")
	}
	if p.Contains(0x0fff, 1) || p.Contains(0x10ff, 2) || p.Contains(0x1100, 1) {
		t.Error("Contains out-of-range accepted")
	}
}

func TestPhysicalBoundsPanic(t *testing.T) {
	p := NewPhysical(0, 128)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-bounds access")
		}
	}()
	p.ReadWord(128)
}

func TestPhysicalAlignmentPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on unaligned region")
		}
	}()
	NewPhysical(8, 128)
}

func TestSnapshotEqual(t *testing.T) {
	p := NewPhysical(0, 256)
	p.WriteWord(0, 7)
	s := p.Snapshot()
	if !p.Equal(s) {
		t.Fatal("snapshot differs from original")
	}
	p.WriteWord(8, 9)
	if p.Equal(s) {
		t.Fatal("snapshot tracked later writes")
	}
	if s.ReadWord(0) != 7 {
		t.Fatal("snapshot lost data")
	}
}

// Property: SetWord/Word round-trips for any word value and any slot.
func TestQuickLineWordRoundTrip(t *testing.T) {
	f := func(v uint64, slot uint8) bool {
		i := int(slot) % WordsPerLine
		var l Line
		l.SetWord(i, Word(v))
		return l.Word(i) == Word(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: word writes through Physical agree with line reads.
func TestQuickPhysicalWordLineAgree(t *testing.T) {
	p := NewPhysical(0, 1<<16)
	f := func(off uint16, v uint64) bool {
		a := Addr(off).WordAligned()
		p.WriteWord(a, Word(v))
		var l Line
		p.ReadLine(a, &l)
		return l.Word(a.WordIndex()) == Word(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
