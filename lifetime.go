package pmemlog

import (
	"fmt"

	"pmemlog/internal/core"
	"pmemlog/internal/nvlog"
)

// LifetimeReport reproduces the paper's NVRAM-lifetime arithmetic
// (Section III-F): how often a statically-allocated log cell is
// overwritten at worst-case append rate, and how long it takes to exhaust
// a given write endurance — the paper's "64K entries (4 MB) ... 15 days"
// example, which is "plenty of time for conventional NVRAM wear-leveling
// schemes to trigger".
type LifetimeReport struct {
	LogEntries        uint64
	EntryRewriteNS    float64 // time between overwrites of one log cell
	Endurance         uint64  // writes per cell
	DaysToWearOut     float64 // with a statically allocated log region
	ScanIntervalCycle uint64  // the FWB interval the log size implies
}

// Lifetime computes the report for a machine configuration and endurance
// (the paper uses 1e8 writes for PCM).
func Lifetime(cfg Config, endurance uint64) LifetimeReport {
	logCfg := nvlog.Config{Base: cfg.NVRAMBase, SizeBytes: cfg.LogBytes, Style: nvlog.UndoRedo}
	entries := logCfg.Capacity()
	perEntryCycles := cfg.NVRAM.AvgAppendCyclesPerLine() *
		float64(logCfg.Style.EntrySize()) / 64.0
	rewriteNS := float64(entries) * perEntryCycles / cfg.CPU.ClockGHz
	days := rewriteNS * float64(endurance) / 1e9 / 86400
	return LifetimeReport{
		LogEntries:        entries,
		EntryRewriteNS:    rewriteNS,
		Endurance:         endurance,
		DaysToWearOut:     days,
		ScanIntervalCycle: core.DeriveScanInterval(logCfg, cfg.NVRAM, 2),
	}
}

// String renders the report in the paper's terms.
func (r LifetimeReport) String() string {
	return fmt.Sprintf(
		"log of %d entries: each cell overwritten every %.1f us at worst-case append rate;\n"+
			"with %.0e-write endurance a statically allocated cell lasts %.1f days\n"+
			"(ample time for start-gap style wear leveling to rotate the region);\n"+
			"implied FWB scan interval: %d cycles",
		r.LogEntries, r.EntryRewriteNS/1e3, float64(r.Endurance), r.DaysToWearOut, r.ScanIntervalCycle)
}

// LogBufferBound re-exports the Section IV-C persistence bound on the log
// buffer size for a configuration (15 entries on the Table II machine).
func LogBufferBound(cfg Config) int {
	return core.LogBufferBound(cfg.Caches.L1.HitCycles, cfg.Caches.L2.HitCycles, cfg.Memctl.QueueCycles)
}
