// Command pmperf is the wall-clock performance harness: it drives a
// pmserver (in-process by default, or an external one via -addr) with a
// configurable connection count, pipeline window, value size, and op mix,
// and reports real ops/s and latency percentiles. Unlike cmd/experiments
// (simulated cycles), pmperf measures the host machine: it exists to show
// that the software pipeline around the simulator — protocol, shards,
// client — is fast, and in particular that the pipelined client protocol
// multiplies throughput over the synchronous one.
//
// Every run measures a window-1 baseline and the requested pipelined
// window on the same server, then writes both plus their speedup as JSON
// (default BENCH_wall.json) so CI can track regressions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pmemlog/internal/prof"
	"pmemlog/internal/server"
)

type runConfig struct {
	Conns      int    `json:"conns"`
	Window     int    `json:"window"`
	Keys       int    `json:"keys"`
	ValueBytes int    `json:"value_bytes"`
	Mix        string `json:"mix"`
	DurationMS int64  `json:"duration_ms"`
	Shards     int    `json:"shards"`
}

type runResult struct {
	Window    int     `json:"window"`
	Ops       uint64  `json:"ops"`
	Errors    uint64  `json:"errors"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50us     float64 `json:"p50_us"`
	P99us     float64 `json:"p99_us"`
	P999us    float64 `json:"p999_us"`
	Maxus     float64 `json:"max_us"`
}

// wrapResult is the wrap-pressure cell: a put-only run against a
// deliberately small log, so the circular log wraps continuously and
// the measured throughput includes sustained truncation/reclaim work
// (the paper's log-pressure regime) instead of the roomy steady state
// the main cells run in.
type wrapResult struct {
	runResult
	LogBytes       int64   `json:"log_bytes"`
	LogWraps       uint64  `json:"log_wraps"` // completed passes, summed over shards
	WrapRatePerSec float64 `json:"wrap_rate_per_sec"`
}

type report struct {
	Config       runConfig   `json:"config"`
	Baseline     runResult   `json:"baseline"`
	Pipelined    runResult   `json:"pipelined"`
	Speedup      float64     `json:"speedup"`
	WrapPressure *wrapResult `json:"wrap_pressure,omitempty"`
}

func main() {
	var (
		addr       = flag.String("addr", "", "existing pmserver address (default: boot an in-process server)")
		conns      = flag.Int("conns", 4, "client connections")
		window     = flag.Int("window", 16, "pipelined in-flight window per connection")
		keys       = flag.Int("keys", 1024, "working-set key count")
		valueBytes = flag.Int("value-bytes", 64, "value size")
		mix        = flag.String("mix", "get=50,put=50", "op mix, e.g. get=90,put=10")
		duration   = flag.Duration("duration", 2*time.Second, "measurement duration per run")
		shards     = flag.Int("shards", 4, "shards for the in-process server")
		out        = flag.String("o", "BENCH_wall.json", "output JSON path (empty = stdout only)")
		wrapLog    = flag.Int64("wrap-log-bytes", 16<<10, "log size for the wrap-pressure cell (0 disables; skipped with -addr)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the measured runs to file")
		memProfile = flag.String("memprofile", "", "write a heap profile to file on exit")
	)
	flag.Parse()

	getPct, putPct, err := parseMix(*mix)
	if err != nil {
		log.Fatalf("pmperf: %v", err)
	}

	target := *addr
	if target == "" {
		dir, err := os.MkdirTemp("", "pmperf-")
		if err != nil {
			log.Fatalf("pmperf: %v", err)
		}
		defer os.RemoveAll(dir)
		srv, err := server.Start(server.Config{
			Addr:   "127.0.0.1:0",
			Dir:    dir,
			Shards: *shards,
			Logger: log.New(os.Stderr, "", 0),
		})
		if err != nil {
			log.Fatalf("pmperf: %v", err)
		}
		defer srv.Shutdown()
		target = srv.Addr()
	}

	keyset := makeKeys(*keys)
	val := make([]byte, *valueBytes)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	if err := preload(target, keyset, val); err != nil {
		log.Fatalf("pmperf: preload: %v", err)
	}

	// Start profiling after preload so profiles cover only measured load.
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatalf("pmperf: %v", err)
	}
	defer stopProf()

	rep := report{Config: runConfig{
		Conns: *conns, Window: *window, Keys: *keys, ValueBytes: *valueBytes,
		Mix: *mix, DurationMS: duration.Milliseconds(), Shards: *shards,
	}}
	fmt.Fprintf(os.Stderr, "pmperf: baseline (window 1, %d conns, %v)...\n", *conns, *duration)
	rep.Baseline = runLoad(target, *conns, 1, keyset, val, getPct, putPct, *duration)
	fmt.Fprintf(os.Stderr, "pmperf: pipelined (window %d, %d conns, %v)...\n", *window, *conns, *duration)
	rep.Pipelined = runLoad(target, *conns, *window, keyset, val, getPct, putPct, *duration)
	if rep.Baseline.OpsPerSec > 0 {
		rep.Speedup = rep.Pipelined.OpsPerSec / rep.Baseline.OpsPerSec
	}
	if *addr == "" && *wrapLog > 0 {
		fmt.Fprintf(os.Stderr, "pmperf: wrap pressure (put-only, %dKiB log, window %d, %d conns, %v)...\n",
			*wrapLog>>10, *window, *conns, *duration)
		wp, err := runWrapPressure(*conns, *window, keyset, val, *duration, *wrapLog, *shards)
		if err != nil {
			log.Fatalf("pmperf: wrap pressure: %v", err)
		}
		rep.WrapPressure = wp
	}

	b, _ := json.MarshalIndent(rep, "", "  ")
	b = append(b, '\n')
	os.Stdout.Write(b)
	if *out != "" {
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			log.Fatalf("pmperf: %v", err)
		}
	}
}

func parseMix(s string) (getPct, putPct int, err error) {
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return 0, 0, fmt.Errorf("bad mix component %q", part)
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, 0, fmt.Errorf("bad mix component %q: %v", part, err)
		}
		switch k {
		case "get":
			getPct = n
		case "put":
			putPct = n
		default:
			return 0, 0, fmt.Errorf("mix op %q not get/put", k)
		}
	}
	if getPct+putPct != 100 {
		return 0, 0, fmt.Errorf("mix percentages sum to %d, want 100", getPct+putPct)
	}
	return getPct, putPct, nil
}

func makeKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("perf-key-%08d", i))
	}
	return keys
}

// preload PUTs every key once so the GET side of the mix always hits.
func preload(addr string, keys [][]byte, val []byte) error {
	c, err := server.DialPipelined(addr, 32)
	if err != nil {
		return err
	}
	defer c.Close()
	c.MaxRetries = 50
	for _, k := range keys {
		call, err := c.PutAsync(k, val)
		if err != nil {
			return err
		}
		go func(call *server.Call) {
			call.Wait()
			call.Release()
		}(call)
	}
	return c.Flush()
}

// runWrapPressure boots a dedicated in-process server with a small log
// and drives a put-only load through it, measuring throughput while the
// circular log wraps continuously. Wrap passes come from /healthz —
// the same published log pointers pmtop's wrap forecast reads.
func runWrapPressure(conns, window int, keys [][]byte, val []byte, d time.Duration, logBytes int64, shards int) (*wrapResult, error) {
	dir, err := os.MkdirTemp("", "pmperf-wrap-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	srv, err := server.Start(server.Config{
		Addr:     "127.0.0.1:0",
		HTTPAddr: "127.0.0.1:0",
		Dir:      dir,
		Shards:   shards,
		LogBytes: uint64(logBytes),
		Logger:   log.New(os.Stderr, "", 0),
	})
	if err != nil {
		return nil, err
	}
	defer srv.Shutdown()
	if err := preload(srv.Addr(), keys, val); err != nil {
		return nil, err
	}

	passes := func() (uint64, error) {
		resp, err := http.Get("http://" + srv.HTTPAddr() + "/healthz")
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		var rep struct {
			Shards []struct {
				LogPass uint64 `json:"log_pass"`
			} `json:"shards"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			return 0, err
		}
		var sum uint64
		for _, sh := range rep.Shards {
			sum += sh.LogPass
		}
		return sum, nil
	}
	before, err := passes()
	if err != nil {
		return nil, err
	}
	res := runLoad(srv.Addr(), conns, window, keys, val, 0, 100, d)
	after, err := passes()
	if err != nil {
		return nil, err
	}

	wp := &wrapResult{runResult: res, LogBytes: logBytes, LogWraps: after - before}
	if res.Seconds > 0 {
		wp.WrapRatePerSec = float64(wp.LogWraps) / res.Seconds
	}
	return wp, nil
}

// inflight pairs an issued call with its submit time for the collector.
type inflight struct {
	call  *server.Call
	start time.Time
}

// runLoad drives conns connections, each pipelining up to window ops, for
// the given duration, and aggregates throughput and latency.
func runLoad(addr string, conns, window int, keys [][]byte, val []byte, getPct, putPct int, d time.Duration) runResult {
	type connStats struct {
		ops, errs uint64
		lats      []time.Duration
	}
	stats := make([]connStats, conns)
	var wg sync.WaitGroup
	deadline := time.Now().Add(d)
	start := time.Now()
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			st := &stats[ci]
			c, err := server.DialPipelined(addr, window)
			if err != nil {
				st.errs++
				return
			}
			defer c.Close()
			c.MaxRetries = 100
			rng := rand.New(rand.NewSource(int64(ci)*7919 + 1))
			ch := make(chan inflight, window)
			var collectWG sync.WaitGroup
			collectWG.Add(1)
			go func() {
				defer collectWG.Done()
				for inf := range ch {
					_, err := inf.call.Wait()
					if err != nil {
						st.errs++
					} else {
						st.ops++
						st.lats = append(st.lats, time.Since(inf.start))
					}
					inf.call.Release()
				}
			}()
			for time.Now().Before(deadline) {
				key := keys[rng.Intn(len(keys))]
				var call *server.Call
				var err error
				submitted := time.Now()
				if rng.Intn(100) < getPct {
					call, err = c.GetAsync(key)
				} else {
					call, err = c.PutAsync(key, val)
				}
				if err != nil {
					st.errs++
					break
				}
				ch <- inflight{call: call, start: submitted}
			}
			close(ch)
			collectWG.Wait()
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := runResult{Window: window, Seconds: elapsed.Seconds()}
	var all []time.Duration
	for i := range stats {
		res.Ops += stats[i].ops
		res.Errors += stats[i].errs
		all = append(all, stats[i].lats...)
	}
	if elapsed > 0 {
		res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		pct := func(p float64) float64 {
			idx := int(p * float64(len(all)-1))
			return float64(all[idx]) / 1e3
		}
		res.P50us, res.P99us, res.P999us = pct(0.50), pct(0.99), pct(0.999)
		res.Maxus = float64(all[len(all)-1]) / 1e3
	}
	return res
}
