package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pmemlog/internal/flight"
	"pmemlog/internal/mem"
	"pmemlog/internal/nvlog"
	"pmemlog/internal/server"
	"pmemlog/internal/txn"
)

// TestDoctorSmoke is the end-to-end smoke `make doctor` runs in CI:
// boot a real server, push spanned traffic through it, capture a
// flight dump mid-flight, and assert pmdoctor renders span timelines
// reassembled from the trace rings.
func TestDoctorSmoke(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{
		Addr:       "127.0.0.1:0",
		Dir:        dir,
		Shards:     2,
		Mode:       txn.FWB,
		QueueDepth: 128,
		BatchMax:   8,
		Buckets:    128,
		NVRAMBytes: 2 << 20,
		LogBytes:   64 << 10,
		L2Bytes:    64 << 10,
		Logger:     log.New(io.Discard, "", 0),
		// Tail-sample everything so finished requests keep their spans.
		SlowThreshold: time.Nanosecond,
	}
	srv, err := server.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	c, err := server.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.MaxRetries = 10
	c.EnableSpans()
	for i := 0; i < 32; i++ {
		key := []byte{'k', byte('0' + i%10), byte('0' + i/10)}
		if err := c.Put(key, bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}

	dumpPath := filepath.Join(dir, "flight-dump.json")
	if err := srv.WriteFlightDump(dumpPath, "manual"); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if code := run([]string{dumpPath}, &out, &out); code != 0 {
		t.Fatalf("pmdoctor exited %d:\n%s", code, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"flight dump v1",
		"reason=manual",
		"trace rings:",
		"shards:",
		"slow requests (tail samples):",
		"timeline:",
		"srv-recv",
		"srv-ack",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("pmdoctor output missing %q:\n%s", want, text)
		}
	}

	// -json must emit one parseable document holding the dump.
	out.Reset()
	if code := run([]string{"-json", "-dump", dumpPath}, &out, &out); code != 0 {
		t.Fatalf("pmdoctor -json exited %d:\n%s", code, out.String())
	}
	var doc struct {
		Dump struct {
			Version int    `json:"version"`
			Reason  string `json:"reason"`
		} `json:"dump"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("pmdoctor -json output unparsable: %v", err)
	}
	if doc.Dump.Version != 1 || doc.Dump.Reason != "manual" {
		t.Fatalf("pmdoctor -json dump = %+v", doc.Dump)
	}
}

// TestDoctorUsage covers the argument edge cases without a server.
func TestDoctorUsage(t *testing.T) {
	var out bytes.Buffer
	if code := run(nil, &out, &out); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	out.Reset()
	if code := run([]string{"does-not-exist.json"}, &out, &out); code != 2 {
		t.Fatalf("missing dump: exit %d, want 2", code)
	}
}

// TestStrictVerdictExitCodes pins pmdoctor's -strict contract per
// verdict class against hand-built images and dumps: crash artifacts
// that recovery handles correctly (torn-but-rolled-back, unlogged,
// acked-but-truncated) exit 0; a broken durability promise (an acked
// write whose transaction recovery undid) exits 1. A verdict/replay
// disagreement also exits 1, but cannot be synthesized from a
// consistent image — the flight scan and the recovery replay read the
// same records — which is exactly why it is strict-fatal when it does
// appear: it means the evidence itself is corrupt.
func TestStrictVerdictExitCodes(t *testing.T) {
	const (
		logBase  = mem.Addr(4096)
		dataAddr = mem.Addr(64 << 10)
		opPut    = 0x02
	)

	type record struct {
		kind uint8
		txid uint16
	}
	cases := []struct {
		name     string
		records  []record
		acked    bool // StatusOK in the slow ring vs still in flight
		wantExit int
		wantOut  string
	}{
		{
			name:     "committed-acked",
			records:  []record{{nvlog.KindUpdate, 7}, {nvlog.KindCommit, 7}},
			acked:    true,
			wantExit: 0,
			wantOut:  "committed",
		},
		{
			name:     "torn-in-flight-rolled-back",
			records:  []record{{nvlog.KindUpdate, 7}},
			acked:    false,
			wantExit: 0,
			wantOut:  "torn",
		},
		{
			name:     "unlogged-in-flight",
			records:  nil,
			acked:    false,
			wantExit: 0,
			wantOut:  "unlogged",
		},
		{
			name:     "acked-write-lost",
			records:  []record{{nvlog.KindUpdate, 7}},
			acked:    true,
			wantExit: 1,
			wantOut:  "ACKED WRITE LOST",
		},
		{
			name:     "acked-truncated",
			records:  nil,
			acked:    true,
			wantExit: 0,
			wantOut:  "unlogged",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()

			img := mem.NewPhysical(0, 256<<10)
			l, writes, err := nvlog.New(nvlog.Config{
				Base: logBase, SizeBytes: 16 << 10, Style: nvlog.UndoRedo,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, rec := range tc.records {
				ws, err := l.PrepareAppend(nvlog.Entry{
					Kind: rec.kind, TxID: rec.txid,
					Addr: dataAddr, Undo: 1, Redo: 2,
				})
				if err != nil {
					t.Fatal(err)
				}
				writes = append(writes, ws...)
			}
			for _, w := range writes {
				img.Write(w.Addr, w.Bytes)
			}
			imgPath := filepath.Join(dir, "shard-000.img")
			if err := img.WriteFile(imgPath); err != nil {
				t.Fatal(err)
			}

			span := flight.SpanSnapshot{
				ID: 1, Op: opPut, Shard: 0, TxID: 7, Status: -1,
			}
			d := &flight.Dump{
				Reason: "test",
				Shards: 1,
				ShardStates: []flight.ShardState{{
					Shard: 0, LogBases: []uint64{uint64(logBase)}, ImagePath: imgPath,
				}},
			}
			if tc.acked {
				span.Status = 0 // StatusOK: the durability promise went out
				d.Slow = []flight.SpanSnapshot{span}
			} else {
				d.InFlight = []flight.SpanSnapshot{span}
			}
			dumpPath := filepath.Join(dir, "flight-dump.json")
			if err := flight.WriteDump(dumpPath, d); err != nil {
				t.Fatal(err)
			}

			var out bytes.Buffer
			code := run([]string{"-strict", dumpPath}, &out, &out)
			if code != tc.wantExit {
				t.Fatalf("exit %d, want %d:\n%s", code, tc.wantExit, out.String())
			}
			if !strings.Contains(out.String(), tc.wantOut) {
				t.Fatalf("output missing %q:\n%s", tc.wantOut, out.String())
			}
		})
	}
}
