package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pmemlog/internal/server"
	"pmemlog/internal/txn"
)

// TestDoctorSmoke is the end-to-end smoke `make doctor` runs in CI:
// boot a real server, push spanned traffic through it, capture a
// flight dump mid-flight, and assert pmdoctor renders span timelines
// reassembled from the trace rings.
func TestDoctorSmoke(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{
		Addr:       "127.0.0.1:0",
		Dir:        dir,
		Shards:     2,
		Mode:       txn.FWB,
		QueueDepth: 128,
		BatchMax:   8,
		Buckets:    128,
		NVRAMBytes: 2 << 20,
		LogBytes:   64 << 10,
		L2Bytes:    64 << 10,
		Logger:     log.New(io.Discard, "", 0),
		// Tail-sample everything so finished requests keep their spans.
		SlowThreshold: time.Nanosecond,
	}
	srv, err := server.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	c, err := server.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.MaxRetries = 10
	c.EnableSpans()
	for i := 0; i < 32; i++ {
		key := []byte{'k', byte('0' + i%10), byte('0' + i/10)}
		if err := c.Put(key, bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}

	dumpPath := filepath.Join(dir, "flight-dump.json")
	if err := srv.WriteFlightDump(dumpPath, "manual"); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if code := run([]string{dumpPath}, &out, &out); code != 0 {
		t.Fatalf("pmdoctor exited %d:\n%s", code, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"flight dump v1",
		"reason=manual",
		"trace rings:",
		"shards:",
		"slow requests (tail samples):",
		"timeline:",
		"srv-recv",
		"srv-ack",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("pmdoctor output missing %q:\n%s", want, text)
		}
	}

	// -json must emit one parseable document holding the dump.
	out.Reset()
	if code := run([]string{"-json", "-dump", dumpPath}, &out, &out); code != 0 {
		t.Fatalf("pmdoctor -json exited %d:\n%s", code, out.String())
	}
	var doc struct {
		Dump struct {
			Version int    `json:"version"`
			Reason  string `json:"reason"`
		} `json:"dump"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("pmdoctor -json output unparsable: %v", err)
	}
	if doc.Dump.Version != 1 || doc.Dump.Reason != "manual" {
		t.Fatalf("pmdoctor -json dump = %+v", doc.Dump)
	}
}

// TestDoctorUsage covers the argument edge cases without a server.
func TestDoctorUsage(t *testing.T) {
	var out bytes.Buffer
	if code := run(nil, &out, &out); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	out.Reset()
	if code := run([]string{"does-not-exist.json"}, &out, &out); code != 2 {
		t.Fatalf("missing dump: exit %d, want 2", code)
	}
}
