// Command pmdoctor is the post-mortem forensics CLI for pmserver's
// flight recorder: it loads a black-box dump (written on panic,
// SIGTERM, or an explicit WriteFlightDump), prints the causal timeline
// of every request that was in flight when the process died, and
// cross-checks each one against the shard's durable NVRAM log image —
// classifying its transaction committed / torn / unlogged in the
// paper's recovery vocabulary and verifying the ruling against what a
// real recovery replay concludes from the same image:
//
//	pmdoctor /data/flight-dump.json
//	pmdoctor -dump flight-dump.json -images /data -strict
//	pmdoctor -dump flight-dump.json -span 4294967297 -json
//
// Exit status: 0 clean (torn-but-correctly-rolled-back crashes
// included), 1 under -strict when an acked write was lost or a verdict
// disagrees with the recovery replay, 2 usage or input errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"pmemlog/internal/flight"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("pmdoctor", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		dumpPath  = fs.String("dump", "", "flight dump JSON (a bare positional argument works too)")
		imagesDir = fs.String("images", "", "directory holding the shard NVRAM images (default: the paths recorded in the dump, then the dump's own directory)")
		spanID    = fs.Uint64("span", 0, "report only this wire span ID")
		jsonOut   = fs.Bool("json", false, "emit the dump and analysis as one JSON document")
		strict    = fs.Bool("strict", false, "exit 1 when any verdict disagrees with the recovery replay")
		noCheck   = fs.Bool("no-analyze", false, "skip the log-image cross-check (print the dump only)")
	)
	fs.Usage = func() {
		fmt.Fprintf(errw, "usage: pmdoctor [flags] [dump.json]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dumpPath == "" && fs.NArg() == 1 {
		*dumpPath = fs.Arg(0)
	}
	if *dumpPath == "" || fs.NArg() > 1 {
		fs.Usage()
		return 2
	}

	d, err := flight.LoadDump(*dumpPath)
	if err != nil {
		fmt.Fprintf(errw, "pmdoctor: %v\n", err)
		return 2
	}
	if *spanID != 0 {
		filterSpan(d, *spanID)
	}

	var an *flight.Analysis
	var analyzeErr error
	if !*noCheck && (len(d.InFlight) > 0 || len(d.Slow) > 0) {
		an, analyzeErr = flight.Analyze(d, imageOpener(d, *dumpPath, *imagesDir))
		if analyzeErr != nil {
			fmt.Fprintf(errw, "pmdoctor: analysis skipped: %v\n", analyzeErr)
		}
	}

	if *jsonOut {
		doc := struct {
			Dump     *flight.Dump     `json:"dump"`
			Analysis *flight.Analysis `json:"analysis,omitempty"`
		}{d, an}
		enc := json.NewEncoder(out)
		enc.SetIndent("", " ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(errw, "pmdoctor: %v\n", err)
			return 2
		}
	} else {
		printDump(out, d)
		printAnalysis(out, d, an)
	}

	// Strict mode separates crash artifacts from broken promises: a torn
	// or unlogged in-flight request that recovery correctly rolled back is
	// normal crash behavior (exit 0); a lost acked write or a verdict that
	// disagrees with the recovery replay is a real failure (exit 1).
	if *strict && an != nil {
		bad := false
		if !an.Agreement() {
			fmt.Fprintf(errw, "pmdoctor: verdicts disagree with the recovery replay\n")
			bad = true
		}
		if n := an.AckedLoss(); n > 0 {
			fmt.Fprintf(errw, "pmdoctor: %d acked write(s) lost by recovery\n", n)
			bad = true
		}
		if bad {
			return 1
		}
	}
	return 0
}

// filterSpan narrows the dump to one span: its snapshot(s) and the
// trace events carrying its tag.
func filterSpan(d *flight.Dump, id uint64) {
	keep := func(in []flight.SpanSnapshot) []flight.SpanSnapshot {
		var out []flight.SpanSnapshot
		for _, s := range in {
			if s.ID == id {
				out = append(out, s)
			}
		}
		return out
	}
	d.InFlight = keep(d.InFlight)
	d.Slow = keep(d.Slow)
	d.Events = d.Timeline(id)
}

// imageOpener resolves a shard index to its NVRAM image file. The
// recorded ImagePath is tried as written (absolute paths from the
// dying process), then rebased onto the dump's directory and the
// -images override — dumps routinely travel away from the machine
// that wrote them.
func imageOpener(d *flight.Dump, dumpPath, imagesDir string) flight.ImageOpener {
	return func(shard int) (io.ReadCloser, error) {
		var recorded string
		for _, st := range d.ShardStates {
			if st.Shard == shard {
				recorded = st.ImagePath
				break
			}
		}
		base := filepath.Base(recorded)
		if recorded == "" {
			base = fmt.Sprintf("shard-%03d.img", shard)
		}
		var candidates []string
		if imagesDir != "" {
			candidates = append(candidates, filepath.Join(imagesDir, base))
		}
		if recorded != "" {
			candidates = append(candidates, recorded)
		}
		candidates = append(candidates, filepath.Join(filepath.Dir(dumpPath), base))
		var firstErr error
		for _, c := range candidates {
			f, err := os.Open(c)
			if err == nil {
				return f, nil
			}
			if firstErr == nil {
				firstErr = err
			}
		}
		return nil, firstErr
	}
}

func printDump(out io.Writer, d *flight.Dump) {
	fmt.Fprintf(out, "flight dump v%d  reason=%s  captured=%s  uptime=%s\n",
		d.Version, d.Reason,
		time.Unix(0, d.CapturedAtNS).UTC().Format(time.RFC3339),
		time.Duration(d.UptimeNS))
	fmt.Fprintf(out, "server %s  mode=%s  shards=%d\n", d.Addr, d.Mode, d.Shards)

	if len(d.RingStats) > 0 {
		fmt.Fprintf(out, "\ntrace rings:\n")
		for i, rs := range d.RingStats {
			name := fmt.Sprintf("ring %d", i)
			if i < len(d.RingNames) {
				name = d.RingNames[i]
			}
			fmt.Fprintf(out, "  %-24s %8d emitted  %6d dropped\n", name, rs.Emitted, rs.Dropped)
		}
	}

	if len(d.ShardStates) > 0 {
		fmt.Fprintf(out, "\nshards:\n")
		for _, st := range d.ShardStates {
			fmt.Fprintf(out, "  shard %d: queue %d/%d  log head=%d tail=%d cap=%d  pass=%d occupancy=%.0f%%\n",
				st.Shard, st.QueueLen, st.QueueCap,
				st.LogHead, st.LogTail, st.LogCap, st.Pass(), 100*st.Occupancy())
		}
	}

	fmt.Fprintf(out, "\nspans: %d in flight, %d slow captured, %d shed (table full)\n",
		len(d.InFlight), d.SlowCaptured, d.SpanDrops)
	if len(d.InFlight) > 0 {
		fmt.Fprintf(out, "\nin-flight at capture:\n")
		for i := range d.InFlight {
			printSpan(out, d, &d.InFlight[i])
		}
	}
	if len(d.Slow) > 0 {
		fmt.Fprintf(out, "\nslow requests (tail samples):\n")
		for i := range d.Slow {
			printSpan(out, d, &d.Slow[i])
		}
	}
}

// printSpan renders one span's stage latencies, txn attribution, and
// causal timeline reassembled from the trace rings.
func printSpan(out io.Writer, d *flight.Dump, sp *flight.SpanSnapshot) {
	fmt.Fprintf(out, "  span %d (tag %08x)  op=%s  shard=%s  status=%s\n",
		sp.ID, sp.Tag(), opName(sp.Op), shardName(sp.Shard), statusName(sp.Status))
	fmt.Fprintf(out, "    stages: recv=%s", time.Duration(sp.RecvNS))
	for _, st := range []struct {
		name string
		ns   int64
	}{{"enqueue", sp.EnqueueNS}, {"apply", sp.ApplyNS}, {"fwb", sp.FwbNS},
		{"durable", sp.DurableNS}, {"ack", sp.AckNS}} {
		if st.ns == 0 {
			fmt.Fprintf(out, "  %s=-", st.name)
			continue
		}
		fmt.Fprintf(out, "  %s=+%s", st.name, time.Duration(st.ns-sp.RecvNS))
	}
	fmt.Fprintln(out)
	if sp.TxID != 0 {
		fmt.Fprintf(out, "    txn %d: begin@%d commit@%d cycles, log records [%d,%d)\n",
			sp.TxID, sp.TxBeginCyc, sp.TxCommitCyc, sp.LogFirst, sp.LogLast)
	}
	printTimeline(out, d, d.Timeline(sp.ID))
}

func printTimeline(out io.Writer, d *flight.Dump, tl []flight.Event) {
	if len(tl) == 0 {
		return
	}
	fmt.Fprintf(out, "    timeline:\n")
	for _, e := range tl {
		ring := fmt.Sprintf("ring %d", e.Ring)
		if e.Ring >= 0 && e.Ring < len(d.RingNames) {
			ring = d.RingNames[e.Ring]
		}
		fmt.Fprintf(out, "      %12d  %-16s %-18s txid=%d arg=%d\n", e.TS, ring, e.Kind, e.TxID, e.Arg)
	}
}

func printAnalysis(out io.Writer, d *flight.Dump, an *flight.Analysis) {
	if an == nil {
		return
	}
	fmt.Fprintf(out, "\nanalysis (dump vs durable log images):\n")
	if an.InFlightUnattributed > 0 {
		fmt.Fprintf(out, "  %d in-flight span(s) had no attributable transaction (died before a shard/txn, or no image)\n",
			an.InFlightUnattributed)
	}
	for _, sa := range an.Shards {
		fmt.Fprintf(out, "  shard %d: recovery scanned %d entries, %d committed (redo), %d uncommitted (undo)\n",
			sa.Shard, sa.Report.EntriesScanned, len(sa.Report.Committed), len(sa.Report.Uncommitted))
		for _, f := range sa.Findings {
			agree := "agrees with replay"
			if !f.Agrees {
				agree = "DISAGREES with replay"
			}
			acked := ""
			if f.Acked {
				acked = ", acked"
				if f.AckedLost {
					acked = ", ACKED WRITE LOST"
				}
			}
			fmt.Fprintf(out, "    span %d txn %d: %s (%d durable records, commit=%v%s) — %s\n",
				f.Span.ID, f.Span.TxID, f.Verdict, f.Records, f.HasCommit, acked, agree)
		}
	}
	if an.Agreement() {
		fmt.Fprintf(out, "  verdicts agree with the recovery replay\n")
	} else {
		fmt.Fprintf(out, "  VERDICT MISMATCH: flight-recorder view and recovery replay differ\n")
	}
	if n := an.AckedLoss(); n > 0 {
		fmt.Fprintf(out, "  ACKED WRITE LOSS: %d acknowledged write(s) did not survive recovery\n", n)
	}
	if d.Chaos != nil {
		fmt.Fprintf(out, "  %s\n", d.Chaos)
	}
}

func opName(op uint8) string {
	switch op {
	case 0x01:
		return "get"
	case 0x02:
		return "put"
	case 0x03:
		return "del"
	case 0x04:
		return "txn"
	case 0x05:
		return "stats"
	case 0x06:
		return "metrics"
	}
	return fmt.Sprintf("op%02x", op)
}

func shardName(s int) string {
	if s < 0 {
		return "unrouted"
	}
	return fmt.Sprintf("%d", s)
}

func statusName(s int) string {
	switch s {
	case -1:
		return "unanswered"
	case 0x00:
		return "ok"
	case 0x01:
		return "not-found"
	case 0x02:
		return "retry"
	case 0x03:
		return "err"
	}
	return fmt.Sprintf("status%02x", s)
}
