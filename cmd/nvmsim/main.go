// Command nvmsim runs one (benchmark, mode, threads) simulation and prints
// its metrics — the workhorse for ad-hoc exploration.
//
// Usage:
//
//	nvmsim -bench hash -mode fwb -threads 4
//	nvmsim -suite whisper -bench tpcc -mode fwb
//	nvmsim -bench rbtree -mode fwb -values str -elements 65536 -txns 1000
//	nvmsim -bench hash -mode fwb -compare       # run all 9 designs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"pmemlog"
	"pmemlog/internal/bench"
)

func main() {
	var (
		benchName = flag.String("bench", "hash", "benchmark: "+strings.Join(pmemlog.MicroBenchNames(), ",")+" (micro) or "+strings.Join(pmemlog.WhisperNames(), ",")+" (whisper)")
		suite     = flag.String("suite", "micro", "micro | whisper")
		modeName  = flag.String("mode", "fwb", "design: non-pers, sw-ulog, sw-rlog, undo-clwb, redo-clwb, hw-ulog, hw-rlog, hwl, fwb")
		threads   = flag.Int("threads", 1, "hardware threads")
		elements  = flag.Int("elements", 0, "structure size (0 = default)")
		txns      = flag.Int("txns", 0, "transactions per thread (0 = default)")
		values    = flag.String("values", "int", "int | str element payloads (micro only)")
		logKB     = flag.Uint64("log-kb", 0, "circular log size in KB (0 = 4096)")
		logBuf    = flag.Int("log-buffer", -1, "log buffer entries (-1 = 15)")
		compare   = flag.Bool("compare", false, "run every design and print a comparison")
		perThread = flag.Bool("per-thread-logs", false, "distributed per-thread logs (Section III-F)")
		record    = flag.String("record", "", "record the workload's operation trace to this file")
		replay    = flag.String("replay", "", "replay a recorded trace instead of running the workload live")
		full      = flag.Bool("full", false, "report-quality sizes (slower)")
		csv       = flag.Bool("csv", false, "CSV output")
		jsonOut   = flag.Bool("json", false, "JSON output (full metric structs)")
		mix       = flag.String("mix", "", "comma-separated microbenchmarks to run CONCURRENTLY, -threads each (e.g. -mix hash,tpcc is 2 benches x threads)")
	)
	flag.Parse()

	p := pmemlog.QuickParams()
	if *full {
		p = pmemlog.FullParams()
	}
	if *elements > 0 {
		p.Elements = *elements
		p.WhisperRecords = *elements
	}
	if *txns > 0 {
		p.TxnsPerThread = *txns
		p.WhisperTxns = *txns
	}
	if *values == "str" {
		p.Values = bench.StrValues
	}
	if *logKB > 0 {
		p.LogBytes = *logKB << 10
	}
	p.LogBufferEntries = *logBuf
	p.PerThreadLogs = *perThread

	modes := []pmemlog.Mode{}
	if *compare {
		modes = pmemlog.AllModes()
	} else {
		m, err := pmemlog.ParseMode(*modeName)
		if err != nil {
			fatal(err)
		}
		modes = append(modes, m)
	}

	t := &pmemlog.Table{Header: []string{
		"mode", "txns", "cycles", "tput(tx/s)", "ipc", "instr",
		"lat-p50", "lat-p99", "nvram-wr-B", "log-B", "mem-energy-uJ",
	}}
	var runs []pmemlog.Run
	var tr *pmemlog.Trace
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		tr, err = pmemlog.ReadTrace(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "replaying %d recorded operations from %s\n", tr.Ops(), *replay)
	}

	for _, m := range modes {
		var r pmemlog.Run
		var err error
		switch {
		case *mix != "":
			r, err = pmemlog.RunMixedMicro(strings.Split(*mix, ","), m, *threads, p)
		case tr != nil:
			r, err = pmemlog.ReplayMicro(tr, *benchName, m, *threads, p)
		case *record != "" && *suite != "whisper":
			var rec *pmemlog.Trace
			rec, r, err = pmemlog.RecordMicro(*benchName, m, *threads, p)
			if err == nil {
				var f *os.File
				if f, err = os.Create(*record); err == nil {
					_, err = rec.WriteTo(f)
					if cerr := f.Close(); err == nil {
						err = cerr
					}
				}
			}
		case *suite == "whisper":
			r, err = pmemlog.RunWhisper(*benchName, m, *threads, p)
		default:
			r, err = pmemlog.RunMicro(*benchName, m, *threads, p)
		}
		if err != nil {
			fatal(err)
		}
		runs = append(runs, r)
		t.Add(r.Mode, r.Transactions, r.Cycles, r.Throughput(), r.IPC(),
			r.Instructions, r.TxnLatencyP50, r.TxnLatencyP99,
			r.NVRAMWriteBytes, r.LogWriteBytes, r.MemEnergyPJ/1e6)
	}
	switch {
	case *jsonOut:
		out, err := json.MarshalIndent(runs, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
	case *csv:
		fmt.Print(t.CSV())
	default:
		fmt.Printf("%s / %s / %d thread(s)\n\n%s", *suite, *benchName, *threads, t)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nvmsim:", err)
	os.Exit(1)
}
