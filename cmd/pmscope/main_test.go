package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pmemlog/internal/flight"
	"pmemlog/internal/mem"
	"pmemlog/internal/nvlog"
	"pmemlog/internal/server"
	"pmemlog/internal/txn"
)

// TestScopeSmoke is the end-to-end smoke: boot a real server, drive
// traffic, close a pulse window, scrape /metrics (which publishes the
// scope gauges into the registry the flight dump snapshots), dump, and
// assert pmscope reports the live gauges.
func TestScopeSmoke(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{
		Addr: "127.0.0.1:0", Dir: dir,
		Shards: 2, Mode: txn.FWB, QueueDepth: 128, BatchMax: 8,
		Buckets: 128, NVRAMBytes: 2 << 20, LogBytes: 64 << 10, L2Bytes: 64 << 10,
		PulseInterval: time.Hour, // the test closes the window itself
		Logger:        log.New(io.Discard, "", 0),
	}
	srv, err := server.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	c, err := server.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.MaxRetries = 10
	for i := 0; i < 64; i++ {
		if err := c.Put([]byte{byte(i), byte(i >> 4)}, bytes.Repeat([]byte{byte(i)}, 24)); err != nil {
			t.Fatal(err)
		}
	}
	srv.Pulse().Tick()
	if _, err := c.Metrics(); err != nil {
		t.Fatal(err)
	}

	dumpPath := filepath.Join(dir, "flight-dump.json")
	if err := srv.WriteFlightDump(dumpPath, "manual"); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if code := run([]string{dumpPath}, &out, &out); code != 0 {
		t.Fatalf("pmscope exited %d:\n%s", code, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"reason=manual",
		"live scope gauges",
		"scope_write_amp_milli",
		"scope_shard_write_amp_milli{shard=\"0\"}",
		"scope_shard_wrap_eta_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("pmscope output missing %q:\n%s", want, text)
		}
	}
}

// TestResidencyScan prices a hand-built log image: known records, known
// byte split, one committed and one torn transaction, and a repeated
// (txn, line) store the analyzer must count as coalescible.
func TestResidencyScan(t *testing.T) {
	const (
		logBase = mem.Addr(4096)
		lineA   = mem.Addr(64 << 10)
		lineB   = mem.Addr(65 << 10)
	)
	dir := t.TempDir()

	img := mem.NewPhysical(0, 256<<10)
	l, writes, err := nvlog.New(nvlog.Config{
		Base: logBase, SizeBytes: 16 << 10, Style: nvlog.UndoRedo,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Txn 7: header, three updates (two on lineA — one coalescible),
	// commit. Txn 9: a single torn update.
	recs := []nvlog.Entry{
		{Kind: nvlog.KindHeader, TxID: 7},
		{Kind: nvlog.KindUpdate, TxID: 7, Addr: lineA, Undo: 1, Redo: 2},
		{Kind: nvlog.KindUpdate, TxID: 7, Addr: lineA + 8, Undo: 3, Redo: 4},
		{Kind: nvlog.KindUpdate, TxID: 7, Addr: lineB, Undo: 5, Redo: 6},
		{Kind: nvlog.KindCommit, TxID: 7},
		{Kind: nvlog.KindUpdate, TxID: 9, Addr: lineB, Undo: 7, Redo: 8},
	}
	// PrepareAppend's writes alias the log's scratch buffers, so each
	// batch must land in the image before the next append.
	for _, w := range writes {
		img.Write(w.Addr, w.Bytes)
	}
	for _, e := range recs {
		ws, err := l.PrepareAppend(e)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range ws {
			img.Write(w.Addr, w.Bytes)
		}
	}
	imgPath := filepath.Join(dir, "shard-000.img")
	if err := img.WriteFile(imgPath); err != nil {
		t.Fatal(err)
	}

	d := &flight.Dump{
		Reason: "test",
		Shards: 1,
		ShardStates: []flight.ShardState{{
			Shard: 0, LogBases: []uint64{uint64(logBase)}, ImagePath: imgPath,
			LogTail: 6, LogCap: 512,
		}},
		Metrics: "# HELP pmserver_scope_write_amp_milli x\n" +
			"pmserver_scope_write_amp_milli 6350\n" +
			"pmserver_scope_shard_coalescible_milli{shard=\"0\"} 250\n" +
			"pmserver_requests_total{op=\"put\"} 10\n", // not a scope series
	}
	dumpPath := filepath.Join(dir, "flight-dump.json")
	if err := flight.WriteDump(dumpPath, d); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if code := run([]string{"-json", dumpPath}, &out, &out); code != 0 {
		t.Fatalf("pmscope exited %d:\n%s", code, out.String())
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("-json output unparsable: %v\n%s", err, out.String())
	}

	if len(rep.Metrics) != 2 {
		t.Fatalf("scope series: %+v", rep.Metrics)
	}
	if rep.Metrics[0].Name != "pmserver_scope_write_amp_milli" || rep.Metrics[0].Value != 6350 {
		t.Fatalf("series 0: %+v", rep.Metrics[0])
	}
	if rep.Metrics[1].Labels != `shard="0"` || rep.Metrics[1].Value != 250 {
		t.Fatalf("series 1: %+v", rep.Metrics[1])
	}

	if len(rep.Residency) != 1 {
		t.Fatalf("residency: %+v (errors %v)", rep.Residency, rep.ImageErrors)
	}
	sr := rep.Residency[0]
	if sr.LiveRecords != 6 || sr.UpdateRecords != 4 || sr.HeaderRecords != 1 || sr.CommitRecords != 1 {
		t.Fatalf("record counts: %+v", sr)
	}
	if sr.CommittedTxns != 1 || sr.TornTxns != 1 {
		t.Fatalf("txn residency: %+v", sr)
	}
	// 6 records × 32-byte slots, updates carrying 8+8+2 value/checksum
	// bytes each, everything else framing.
	if sr.LiveBytes != 6*nvlog.FullEntrySize {
		t.Fatalf("live bytes: %d", sr.LiveBytes)
	}
	if sr.UndoBytes != 32 || sr.RedoBytes != 32 || sr.ChecksumBytes != 12 {
		t.Fatalf("byte split: %+v", sr)
	}
	if sum := sr.UndoBytes + sr.RedoBytes + sr.HeaderBytes + sr.ChecksumBytes; sum != sr.LiveBytes {
		t.Fatalf("byte split does not sum: %d != %d", sum, sr.LiveBytes)
	}
	// Two of the four updates hit lineA within txn 7; the second is the
	// coalescible one (lineA and lineA+8 share a cache line).
	if sr.CoalescibleFraction != 0.25 {
		t.Fatalf("coalescible: %v", sr.CoalescibleFraction)
	}
	// Log amp: 192 live bytes over 4 words of payload.
	if sr.LogWriteAmp != 6 {
		t.Fatalf("log write amp: %v", sr.LogWriteAmp)
	}
	if sr.ReplayEstRecords != 6 || sr.ReplayEstBytes != 6*nvlog.FullEntrySize+4*mem.WordSize {
		t.Fatalf("replay bill: %+v", sr)
	}
}

// TestScopeUsage covers the argument edge cases without a server.
func TestScopeUsage(t *testing.T) {
	var out bytes.Buffer
	if code := run(nil, &out, &out); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	out.Reset()
	if code := run([]string{"does-not-exist.json"}, &out, &out); code != 2 {
		t.Fatalf("missing dump: exit %d, want 2", code)
	}
}
