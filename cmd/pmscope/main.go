// Command pmscope is the offline persistence-cost analyzer: the
// post-mortem counterpart of the live scope panel in pmtop. It reads a
// flight-recorder dump (and, when the shard NVRAM images are reachable,
// the durable log images themselves) and reports where every NVRAM byte
// went — write amplification, the undo/redo/header/checksum byte split,
// log residency (live vs committed vs torn records and the recovery
// replay bill they imply), and the coalescible fraction measured from
// actual per-transaction line recurrence in the log:
//
//	pmscope /data/flight-dump.json
//	pmscope -dump flight-dump.json -images /data -json
//	pmscope -dump flight-dump.json -no-images
//
// Two evidence layers, cross-referenced when both exist:
//
//   - The dump's embedded /metrics snapshot carries the pmserver_scope_*
//     gauges the live server computed from its pulse windows — rates and
//     fractions over the final telemetry window.
//   - The shard log images are ground truth for residency: pmscope
//     re-scans every log region exactly as recovery would and prices the
//     replay from what is durably there, not from what the dying server
//     believed.
//
// Exit status: 0 on success, 2 on usage or input errors. Missing images
// degrade the report (metrics-only), they do not fail it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"pmemlog/internal/flight"
	"pmemlog/internal/mem"
	"pmemlog/internal/nvlog"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("pmscope", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		dumpPath  = fs.String("dump", "", "flight dump JSON (a bare positional argument works too)")
		imagesDir = fs.String("images", "", "directory holding the shard NVRAM images (default: the paths recorded in the dump, then the dump's own directory)")
		jsonOut   = fs.Bool("json", false, "emit the analysis as one JSON document")
		noImages  = fs.Bool("no-images", false, "skip the log-image residency scan (metrics snapshot only)")
	)
	fs.Usage = func() {
		fmt.Fprintf(errw, "usage: pmscope [flags] [dump.json]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dumpPath == "" && fs.NArg() == 1 {
		*dumpPath = fs.Arg(0)
	}
	if *dumpPath == "" || fs.NArg() > 1 {
		fs.Usage()
		return 2
	}

	d, err := flight.LoadDump(*dumpPath)
	if err != nil {
		fmt.Fprintf(errw, "pmscope: %v\n", err)
		return 2
	}

	rep := &Report{
		Dump:    *dumpPath,
		Reason:  d.Reason,
		Mode:    d.Mode,
		Shards:  d.Shards,
		Metrics: scopeSeries(d.Metrics),
	}
	if !*noImages {
		for _, st := range d.ShardStates {
			sr, err := scanShard(&st, imageOpener(&st, *dumpPath, *imagesDir))
			if err != nil {
				rep.ImageErrors = append(rep.ImageErrors,
					fmt.Sprintf("shard %d: %v", st.Shard, err))
				continue
			}
			rep.Residency = append(rep.Residency, *sr)
		}
		sort.Slice(rep.Residency, func(i, j int) bool {
			return rep.Residency[i].Shard < rep.Residency[j].Shard
		})
	}

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", " ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(errw, "pmscope: %v\n", err)
			return 2
		}
		return 0
	}
	printReport(out, rep)
	return 0
}

// Report is the full analysis document (-json emits it verbatim).
type Report struct {
	Dump   string `json:"dump"`
	Reason string `json:"reason"`
	Mode   string `json:"mode,omitempty"`
	Shards int    `json:"shards"`

	// Metrics is every pmserver_scope_* series from the dump's embedded
	// /metrics snapshot — the live collector's last word.
	Metrics []Series `json:"metrics,omitempty"`

	// Residency is the ground-truth log-image scan, one entry per shard
	// whose image was reachable.
	Residency   []ShardResidency `json:"residency,omitempty"`
	ImageErrors []string         `json:"image_errors,omitempty"`
}

// Series is one Prometheus sample from the dump's metrics snapshot.
type Series struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// ShardResidency prices one shard's durable log: what recovery would
// have to replay, and what the bytes on NVRAM were spent on.
type ShardResidency struct {
	Shard int `json:"shard"`

	// Live records by kind, across every log region (grown regions
	// included), torn tails excluded exactly as recovery excludes them.
	LiveRecords   uint64 `json:"live_records"`
	UpdateRecords uint64 `json:"update_records"`
	HeaderRecords uint64 `json:"header_records"`
	CommitRecords uint64 `json:"commit_records"`

	// Transaction residency: committed transactions are redone on
	// recovery; torn ones (records but no commit marker) are undone.
	CommittedTxns int `json:"committed_txns"`
	TornTxns      int `json:"torn_txns"`

	// ReplayEstRecords is the recovery bill: every live record must be
	// read, and every update record replays one word (redo for committed
	// transactions, undo for torn ones).
	ReplayEstRecords uint64 `json:"replay_est_records"`
	ReplayEstBytes   uint64 `json:"replay_est_bytes"`

	// Byte split of the live log footprint, per the record layout: an
	// update record carries an 8-byte undo word, an 8-byte redo word, and
	// a 2-byte checksum; header and commit records are all framing.
	LiveBytes     uint64 `json:"live_bytes"`
	UndoBytes     uint64 `json:"undo_bytes"`
	RedoBytes     uint64 `json:"redo_bytes"`
	HeaderBytes   uint64 `json:"header_bytes"`
	ChecksumBytes uint64 `json:"checksum_bytes"`

	// LogWriteAmp is the live-log amplification: durable log bytes per
	// payload byte (one word per update record). Write-back traffic is
	// not visible in a post-crash image, so this is the logging term of
	// the live panel's write amp, not the whole.
	LogWriteAmp float64 `json:"log_write_amp"`

	// CoalescibleFraction measured from the log itself: the share of
	// update records whose (transaction, cache line) pair already
	// appeared earlier in the same transaction — stores a line-granular
	// coalescing buffer would have merged.
	CoalescibleFraction float64 `json:"coalescible_fraction"`

	Occupancy float64 `json:"occupancy"`
	Pass      uint64  `json:"pass"`
}

// scopeSeries extracts every pmserver_scope_* sample from a Prometheus
// text exposition. The format is line-oriented: comments start with #,
// samples are `name{labels} value` or `name value`.
func scopeSeries(metrics string) []Series {
	var out []Series
	for _, line := range strings.Split(metrics, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") ||
			!strings.HasPrefix(line, "pmserver_scope_") {
			continue
		}
		name := line
		labels := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.LastIndexByte(line, '}')
			if j < i {
				continue
			}
			name, labels = line[:i], line[i+1:j]
			line = name + line[j+1:]
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		out = append(out, Series{Name: fields[0], Labels: labels, Value: v})
	}
	return out
}

// imageOpener resolves one shard's NVRAM image, trying the recorded
// path, the -images override, and the dump's own directory — the same
// rebasing pmdoctor does, because dumps travel.
func imageOpener(st *flight.ShardState, dumpPath, imagesDir string) func() (io.ReadCloser, error) {
	return func() (io.ReadCloser, error) {
		base := filepath.Base(st.ImagePath)
		if st.ImagePath == "" {
			base = fmt.Sprintf("shard-%03d.img", st.Shard)
		}
		var candidates []string
		if imagesDir != "" {
			candidates = append(candidates, filepath.Join(imagesDir, base))
		}
		if st.ImagePath != "" {
			candidates = append(candidates, st.ImagePath)
		}
		candidates = append(candidates, filepath.Join(filepath.Dir(dumpPath), base))
		var firstErr error
		for _, c := range candidates {
			f, err := os.Open(c)
			if err == nil {
				return f, nil
			}
			if firstErr == nil {
				firstErr = err
			}
		}
		return nil, firstErr
	}
}

// scanShard reads one shard's image and prices its durable log.
func scanShard(st *flight.ShardState, open func() (io.ReadCloser, error)) (*ShardResidency, error) {
	if len(st.LogBases) == 0 {
		return nil, fmt.Errorf("no log regions recorded")
	}
	rc, err := open()
	if err != nil {
		return nil, err
	}
	img, err := mem.ReadPhysical(rc)
	rc.Close()
	if err != nil {
		return nil, err
	}

	sr := &ShardResidency{
		Shard:     st.Shard,
		Occupancy: st.Occupancy(),
		Pass:      st.Pass(),
	}
	// Per-transaction line recurrence and commit evidence accumulate
	// across regions: a grown log splits one transaction's records over
	// two regions, and coalescibility is a property of the transaction.
	records := map[uint16]uint64{}
	commits := map[uint16]bool{}
	type txnLine struct {
		txid uint16
		line uint64
	}
	lines := map[txnLine]bool{}
	var coalescible uint64

	for _, b := range st.LogBases {
		base := mem.Addr(b)
		meta, err := nvlog.ReadMeta(img, base)
		if err != nil {
			return nil, err
		}
		entries, _, err := nvlog.Scan(img, base, meta)
		if err != nil {
			return nil, err
		}
		slot := meta.SlotSize()
		for _, e := range entries {
			sr.LiveRecords++
			sr.LiveBytes += slot
			records[e.TxID]++
			switch e.Kind {
			case nvlog.KindUpdate:
				sr.UpdateRecords++
				sr.UndoBytes += nvlog.RecUndoBytes
				sr.RedoBytes += nvlog.RecRedoBytes
				sr.ChecksumBytes += nvlog.RecChecksumBytes
				sr.HeaderBytes += slot - nvlog.RecUndoBytes - nvlog.RecRedoBytes - nvlog.RecChecksumBytes
				key := txnLine{e.TxID, uint64(e.Addr.Line())}
				if lines[key] {
					coalescible++
				} else {
					lines[key] = true
				}
			case nvlog.KindCommit:
				sr.CommitRecords++
				commits[e.TxID] = true
				sr.ChecksumBytes += nvlog.RecChecksumBytes
				sr.HeaderBytes += slot - nvlog.RecChecksumBytes
			default:
				sr.HeaderRecords++
				sr.ChecksumBytes += nvlog.RecChecksumBytes
				sr.HeaderBytes += slot - nvlog.RecChecksumBytes
			}
		}
	}

	for txid := range records {
		if commits[txid] {
			sr.CommittedTxns++
		} else {
			sr.TornTxns++
		}
	}
	// Recovery reads every live record and writes one word per update.
	sr.ReplayEstRecords = sr.LiveRecords
	sr.ReplayEstBytes = sr.LiveBytes + sr.UpdateRecords*mem.WordSize
	if payload := sr.UpdateRecords * mem.WordSize; payload > 0 {
		sr.LogWriteAmp = float64(sr.LiveBytes) / float64(payload)
	}
	if sr.UpdateRecords > 0 {
		sr.CoalescibleFraction = float64(coalescible) / float64(sr.UpdateRecords)
	}
	return sr, nil
}

func printReport(out io.Writer, r *Report) {
	fmt.Fprintf(out, "pmscope %s  reason=%s  mode=%s  shards=%d\n",
		r.Dump, r.Reason, r.Mode, r.Shards)

	if len(r.Metrics) > 0 {
		fmt.Fprintf(out, "\nlive scope gauges (last pulse window before the dump):\n")
		for _, s := range r.Metrics {
			name := strings.TrimPrefix(s.Name, "pmserver_")
			if s.Labels != "" {
				name += "{" + s.Labels + "}"
			}
			fmt.Fprintf(out, "  %-56s %g\n", name, s.Value)
		}
	} else {
		fmt.Fprintf(out, "\nno scope gauges in the dump's metrics snapshot\n")
	}

	for i := range r.Residency {
		sr := &r.Residency[i]
		fmt.Fprintf(out, "\nshard %d log residency (scanned from the durable image):\n", sr.Shard)
		fmt.Fprintf(out, "  live records: %d (%d update, %d header, %d commit)  occupancy %.0f%%  pass %d\n",
			sr.LiveRecords, sr.UpdateRecords, sr.HeaderRecords, sr.CommitRecords,
			100*sr.Occupancy, sr.Pass)
		fmt.Fprintf(out, "  transactions: %d committed (redo on recovery), %d torn (undo on recovery)\n",
			sr.CommittedTxns, sr.TornTxns)
		fmt.Fprintf(out, "  live bytes: %d = undo %d + redo %d + header %d + checksum %d\n",
			sr.LiveBytes, sr.UndoBytes, sr.RedoBytes, sr.HeaderBytes, sr.ChecksumBytes)
		fmt.Fprintf(out, "  log write amp: %.2fx over %d payload bytes  coalescible %.1f%%\n",
			sr.LogWriteAmp, sr.UpdateRecords*mem.WordSize, 100*sr.CoalescibleFraction)
		fmt.Fprintf(out, "  recovery bill: read %d records, replay ~%d bytes\n",
			sr.ReplayEstRecords, sr.ReplayEstBytes)
	}
	for _, e := range r.ImageErrors {
		fmt.Fprintf(out, "\nimage scan skipped: %s\n", e)
	}
}
