package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRoundTrip is the acceptance test: record a micro run with a log
// small enough to provably wrap, emit Chrome trace_event JSON, parse
// it back, and find the transaction duration events, FWB activity, and
// the wrap-around instants.
func TestRoundTrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-bench", "hash", "-mode", "fwb", "-threads", "2",
		"-elements", "2048", "-txns", "120", "-log-kb", "16",
		"-o", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("pmtrace exited %d: %s", code, stderr.String())
	}

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Cat   string  `json:"cat"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			TID   int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("emitted trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	counts := map[string]int{}
	begins, ends := 0, 0
	for _, e := range trace.TraceEvents {
		counts[e.Name]++
		if e.Name == "txn" && e.Phase == "B" {
			begins++
		}
		if e.Name == "txn" && e.Phase == "E" {
			ends++
		}
		if e.TS < 0 {
			t.Fatalf("negative timestamp in %+v", e)
		}
	}
	// 2 threads x 120 txns, rings big enough to keep them all.
	if begins != 240 || ends != 240 {
		t.Fatalf("txn B/E = %d/%d, want 240/240", begins, ends)
	}
	if counts["log-wrap"] == 0 {
		t.Fatal("16 KB log over 240 multi-record txns must wrap, but no log-wrap events")
	}
	if counts["fwb-scan"] == 0 || counts["fwb-forced"] == 0 {
		t.Fatalf("fwb mode ran without FWB events: %v", counts)
	}
	if counts["log-append"] == 0 {
		t.Fatal("no log-append events")
	}

	// The human-readable summary carries the per-phase breakdown.
	for _, want := range []string{"committed", "pre-log", "logging", "commit", "total"} {
		if !strings.Contains(stdout.String(), want) {
			t.Fatalf("stdout missing %q:\n%s", want, stdout.String())
		}
	}
}

// TestStdoutMode writes the JSON to stdout with -o -.
func TestStdoutMode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-bench", "sps", "-mode", "hwl", "-threads", "1",
		"-elements", "512", "-txns", "20", "-log-kb", "32", "-o", "-",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("pmtrace exited %d: %s", code, stderr.String())
	}
	// First line is the JSON document, then the summary.
	line, _, _ := strings.Cut(stdout.String(), "\n")
	var doc map[string]any
	if err := json.Unmarshal([]byte(line), &doc); err != nil {
		t.Fatalf("stdout JSON line does not parse: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("stdout JSON missing traceEvents")
	}
}

func TestBadFlags(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-mode", "no-such-design"}, &out, &errw); code != 2 {
		t.Fatalf("bad mode exited %d, want 2", code)
	}
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errw); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}
