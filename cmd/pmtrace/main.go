// Command pmtrace records an event trace of one microbenchmark run and
// converts it to Chrome trace_event JSON (loadable in about:tracing or
// https://ui.perfetto.dev), plus a per-phase transaction breakdown on
// stdout:
//
//	go run ./cmd/pmtrace -bench hash -mode fwb -threads 2 -o trace.json
//
// The timeline makes the paper's ordering arguments visible: log
// appends racing the cached stores they cover, FWB scans draining
// dirty lines, wrap-arounds and buffer stalls exactly where they
// happen relative to the transactions that caused them.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pmemlog"
	"pmemlog/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("pmtrace", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		benchName = fs.String("bench", "hash", "microbenchmark: hash, rbtree, sps, btree, ssca2")
		modeName  = fs.String("mode", "fwb", "design point (e.g. fwb, hwl, undo-clwb, redo-clwb, non-pers)")
		threads   = fs.Int("threads", 2, "hardware threads")
		elements  = fs.Int("elements", 4096, "elements in the benchmark structure")
		txns      = fs.Int("txns", 150, "transactions per thread")
		logKB     = fs.Int("log-kb", 64, "undo+redo log size in KB (small logs exercise wrap-around; below ~128 the large-transaction benchmarks rbtree/btree crawl through emergency flushes)")
		events    = fs.Int("events", 1<<16, "ring capacity per thread (oldest records overwritten beyond it)")
		ghz       = fs.Float64("ghz", 2.0, "displayed clock: cycles are divided by ghz*1000 to map onto the viewer's microsecond axis")
		outPath   = fs.String("o", "trace.json", "output path for the Chrome trace (- for stdout)")
	)
	fs.Usage = func() {
		fmt.Fprintf(errw, "usage: pmtrace [flags]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	mode, err := pmemlog.ParseMode(*modeName)
	if err != nil {
		fmt.Fprintf(errw, "pmtrace: %v\n", err)
		return 2
	}
	p := pmemlog.QuickParams()
	p.Elements = *elements
	p.TxnsPerThread = *txns
	p.LogBytes = uint64(*logKB) << 10

	evs, ringNames, runStats, err := pmemlog.TraceMicro(*benchName, mode, *threads, p, *events)
	if err != nil {
		fmt.Fprintf(errw, "pmtrace: %v\n", err)
		return 1
	}

	w := out
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(errw, "pmtrace: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	cyclesPerMicro := *ghz * 1000
	if err := obs.WriteChromeTrace(w, evs, cyclesPerMicro, ringNames); err != nil {
		fmt.Fprintf(errw, "pmtrace: %v\n", err)
		return 1
	}

	fmt.Fprintf(out, "%s/%s/%dt: %d events captured (%d cycles wall)\n",
		*benchName, mode, *threads, len(evs), runStats.Cycles)
	obs.PhaseBreakdown(evs).Format(out)
	if *outPath != "-" {
		fmt.Fprintf(out, "trace written to %s — open in about:tracing or ui.perfetto.dev\n", *outPath)
	}
	return 0
}
