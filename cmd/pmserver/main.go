// Command pmserver serves a sharded persistent KV store over TCP: every
// write funnels through the simulated HWL/FWB persistent-memory pipeline
// and is acknowledged only once the shard's NVRAM DIMM image is durably on
// disk. SIGINT/SIGTERM drain gracefully; kill -9 exercises the recovery
// path (the next boot replays the logs in each shard image).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pmemlog/internal/prof"
	"pmemlog/internal/server"
	"pmemlog/internal/txn"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:7070", "TCP listen address")
		dir    = flag.String("dir", "pmserver-data", "data directory for shard DIMM images")
		shards = flag.Int("shards", 4, "worker shards (fixed at first boot; later runs adopt the manifest)")
		mode   = flag.String("mode", "fwb", "logging design (fwb, hw-ulog, hw-rlog, ...)")
		queue  = flag.Int("queue", 256, "per-shard queue depth before backpressure")
		batch  = flag.Int("batch", 32, "max requests per shard batch")
		nvram  = flag.Uint64("nvram-mb", 8, "per-shard NVRAM size in MiB")
		logKB  = flag.Uint64("log-kb", 256, "per-shard log size in KiB")

		httpAddr = flag.String("http-addr", "", "serve /healthz, /pulse.json, and /metrics on this address (off when empty)")

		pulseInterval = flag.Duration("pulse-interval", time.Second, "telemetry window length (pmtop refresh granularity)")
		pulseWindows  = flag.Int("pulse-windows", 64, "completed telemetry windows retained for trends")
		slo           = flag.Duration("slo", 20*time.Millisecond, "latency objective for SLO burn accounting")
		sloBudget     = flag.Float64("slo-budget", 0.001, "error budget: tolerated fraction of requests over the objective")
		degradedWrap  = flag.Float64("degraded-wrap", 1.0, "log wrap passes/s per shard before /healthz reports degraded")
		degradedQueue = flag.Float64("degraded-queue", 0.9, "queue-fill fraction per shard before /healthz reports degraded")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file (stopped at drain)")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at drain")
		pprofAddr  = flag.String("pprof-addr", "", "serve net/http/pprof on this address (off when empty)")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	prof.Serve(*pprofAddr, log.Printf)

	m, err := txn.ParseMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	srv, err := server.Start(server.Config{
		Addr:       *addr,
		Dir:        *dir,
		Shards:     *shards,
		Mode:       m,
		QueueDepth: *queue,
		BatchMax:   *batch,
		NVRAMBytes: *nvram << 20,
		LogBytes:   *logKB << 10,
		HTTPAddr:   *httpAddr,

		PulseInterval:    *pulseInterval,
		PulseWindows:     *pulseWindows,
		SLOLatency:       *slo,
		SLOBudget:        *sloBudget,
		DegradedWrapRate: *degradedWrap,
		DegradedQueue:    *degradedQueue,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	log.Printf("pmserver: %v: draining", s)
	// Leave the black box behind before the drain erases the in-flight
	// picture: the dump lands next to the shard images for pmdoctor.
	if err := srv.WriteFlightDump(srv.FlightDumpPath(), s.String()); err != nil {
		log.Printf("pmserver: flight dump failed: %v", err)
	} else {
		log.Printf("pmserver: flight dump written to %s", srv.FlightDumpPath())
	}
	srv.Shutdown()
	stopProf()
}
