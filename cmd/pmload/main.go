// Command pmload is a closed-loop load generator for pmserver: N
// connections each issue a configurable read/write mix against a shared
// keyspace and the run reports sustained throughput plus client-observed
// latency percentiles (p50/p95/p99).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"pmemlog/internal/server"
)

type connResult struct {
	ops       int
	reads     int
	writes    int
	txns      int
	notFound  int
	retries   int
	errs      int
	latencies []time.Duration // per-op round-trip
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "pmserver address")
		conns    = flag.Int("conns", 64, "concurrent connections (closed loop, one op in flight each)")
		ops      = flag.Int("ops", 2000, "operations per connection")
		readFrac = flag.Float64("read-frac", 0.5, "fraction of ops that are GETs")
		txnFrac  = flag.Float64("txn-frac", 0.05, "fraction of ops that are 3-op TXN batches")
		keys     = flag.Int("keys", 4096, "distinct keys in the shared keyspace")
		valSize  = flag.Int("value-size", 128, "value size in bytes")
		seed     = flag.Int64("seed", 1, "PRNG seed")
		spans    = flag.Bool("spans", false, "send request spans so the server's flight recorder can trace this load")
		stats    = flag.Bool("stats", true, "print the server stats snapshot after the run")
	)
	flag.Parse()
	if *valSize > server.MaxValueLen {
		fmt.Fprintf(os.Stderr, "value-size %d exceeds protocol limit %d\n", *valSize, server.MaxValueLen)
		os.Exit(2)
	}

	// Discover the shard count once so TXN batches can be built same-shard.
	probe, err := server.Dial(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmload: %v\n", err)
		os.Exit(1)
	}
	snap, err := probe.Stats()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmload: stats probe: %v\n", err)
		os.Exit(1)
	}
	probe.Close()
	shards := snap.Shards

	// Pre-group the keyspace by shard for TXN construction.
	byShard := make([][]int, shards)
	for k := 0; k < *keys; k++ {
		s := server.ShardOf(keyName(k), shards)
		byShard[s] = append(byShard[s], k)
	}

	results := make([]*connResult, *conns)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = runConn(*addr, *ops, *readFrac, *txnFrac, *keys, *valSize, *spans, byShard,
				rand.New(rand.NewSource(*seed+int64(i))))
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total connResult
	var lats []time.Duration
	for _, r := range results {
		total.ops += r.ops
		total.reads += r.reads
		total.writes += r.writes
		total.txns += r.txns
		total.notFound += r.notFound
		total.retries += r.retries
		total.errs += r.errs
		lats = append(lats, r.latencies...)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })

	fmt.Printf("pmload: %d conns x %d ops against %s (%d shards)\n", *conns, *ops, *addr, shards)
	fmt.Printf("  completed: %d ops in %v (%d reads, %d writes, %d txns, %d not-found, %d retries, %d errors)\n",
		total.ops, elapsed.Round(time.Millisecond), total.reads, total.writes, total.txns,
		total.notFound, total.retries, total.errs)
	fmt.Printf("  throughput: %.0f ops/s\n", float64(total.ops)/elapsed.Seconds())
	if len(lats) > 0 {
		fmt.Printf("  latency: p50=%v p95=%v p99=%v max=%v\n",
			pct(lats, 50), pct(lats, 95), pct(lats, 99), lats[len(lats)-1])
	}
	if *stats {
		c, err := server.Dial(*addr)
		if err == nil {
			if js, err := c.StatsJSON(); err == nil {
				fmt.Printf("  server stats: %s\n", js)
			}
			c.Close()
		}
	}
	if total.errs > 0 {
		os.Exit(1)
	}
}

func keyName(k int) []byte { return []byte(fmt.Sprintf("load-%06d", k)) }

func runConn(addr string, ops int, readFrac, txnFrac float64, keys, valSize int,
	spans bool, byShard [][]int, rng *rand.Rand) *connResult {
	r := &connResult{latencies: make([]time.Duration, 0, ops)}
	c, err := server.Dial(addr)
	if err != nil {
		r.errs++
		return r
	}
	defer c.Close()
	c.MaxRetries = 100
	if spans {
		c.EnableSpans()
	}
	val := make([]byte, valSize)
	for i := 0; i < ops; i++ {
		rng.Read(val)
		var err error
		t0 := time.Now()
		switch p := rng.Float64(); {
		case p < readFrac:
			_, found, gerr := c.Get(keyName(rng.Intn(keys)))
			err = gerr
			r.reads++
			if gerr == nil && !found {
				r.notFound++
			}
		case p < readFrac+txnFrac:
			// Same-shard batch: pick a shard, then 3 of its keys.
			group := byShard[rng.Intn(len(byShard))]
			if len(group) < 3 {
				continue
			}
			opsb := make([]server.Op, 3)
			for j := range opsb {
				opsb[j] = server.Op{Code: server.OpPut,
					Key: keyName(group[rng.Intn(len(group))]), Val: val}
			}
			err = c.Txn(opsb)
			r.txns++
		default:
			err = c.Put(keyName(rng.Intn(keys)), val)
			r.writes++
		}
		if re, ok := err.(server.ErrRetry); ok {
			r.retries++
			time.Sleep(re.After)
			continue
		}
		if err != nil {
			r.errs++
			return r
		}
		r.ops++
		r.latencies = append(r.latencies, time.Since(t0))
	}
	return r
}

func pct(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}
