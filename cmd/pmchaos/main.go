// Command pmchaos runs deterministic fault-injection campaigns against
// the simulated machine and the server, auditing every run with the
// same machinery pmdoctor -strict uses. A campaign sweeps a seed range
// across the scenario matrix; every failure message carries the seed,
// and the same seed replays the failing run bit-for-bit:
//
//	pmchaos -seeds 20 -o chaos-report.json
//	pmchaos -scenarios torn-log-line,net-faults -seeds 50
//	pmchaos -scenarios combined -seed 1337        # exact replay of one run
//
// Exit status: 0 all runs clean, 1 any run failed, 2 usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pmemlog/internal/chaos/campaign"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("pmchaos", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		scenarioCSV = fs.String("scenarios", "", "comma-separated scenario names (default: all)")
		seeds       = fs.Int("seeds", 20, "number of seeds to sweep per scenario")
		startSeed   = fs.Int64("start-seed", 1, "first seed of the sweep")
		oneSeed     = fs.Int64("seed", 0, "run exactly this one seed (replay mode; overrides -seeds)")
		reportPath  = fs.String("o", "", "write the JSON campaign report here")
		scratch     = fs.String("dir", "", "scratch directory for server runs (default: a temp dir)")
		list        = fs.Bool("list", false, "list the scenario matrix and exit")
		verbose     = fs.Bool("v", false, "print one line per run")
	)
	fs.Usage = func() {
		fmt.Fprintf(errw, "usage: pmchaos [flags]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return 2
	}

	all := campaign.Scenarios()
	if *list {
		for _, sc := range all {
			fmt.Fprintf(out, "%-14s [%s]  %s\n", sc.Name, sc.Target, sc.Desc)
		}
		return 0
	}

	scs := all
	if *scenarioCSV != "" {
		scs = scs[:0]
		for _, name := range strings.Split(*scenarioCSV, ",") {
			name = strings.TrimSpace(name)
			sc, ok := campaign.FindScenario(name)
			if !ok {
				fmt.Fprintf(errw, "pmchaos: unknown scenario %q (try -list)\n", name)
				return 2
			}
			scs = append(scs, sc)
		}
	}

	var seedList []int64
	if *oneSeed != 0 {
		seedList = []int64{*oneSeed}
	} else {
		if *seeds <= 0 {
			fmt.Fprintf(errw, "pmchaos: -seeds must be positive\n")
			return 2
		}
		for i := 0; i < *seeds; i++ {
			seedList = append(seedList, *startSeed+int64(i))
		}
	}

	dir := *scratch
	if dir == "" {
		tmp, err := os.MkdirTemp("", "pmchaos-")
		if err != nil {
			fmt.Fprintf(errw, "pmchaos: %v\n", err)
			return 2
		}
		dir = tmp
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(errw, "pmchaos: %v\n", err)
		return 2
	}

	var progress io.Writer
	if *verbose {
		progress = out
	}
	rep := campaign.RunCampaign(scs, seedList, dir, progress)

	if *reportPath != "" {
		buf, err := json.MarshalIndent(rep, "", " ")
		if err == nil {
			err = os.WriteFile(*reportPath, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(errw, "pmchaos: writing report: %v\n", err)
			return 2
		}
	}

	fmt.Fprintf(out, "pmchaos: %d scenario(s) x %d seed(s): %d run(s), %d failed\n",
		len(scs), len(seedList), rep.TotalRuns, rep.FailedRuns)
	if rep.FailedRuns > 0 {
		for _, f := range rep.Failures {
			fmt.Fprintf(errw, "pmchaos: FAIL %s\n", f)
		}
		// Every failure string leads with "seed N [scenario]"; spell out
		// the replay invocation for the first one.
		if len(rep.Failures) > 0 {
			var seed int64
			var sc string
			if _, err := fmt.Sscanf(rep.Failures[0], "seed %d [%s", &seed, &sc); err == nil {
				sc = strings.TrimSuffix(sc, "]:")
				sc = strings.TrimSuffix(sc, "]")
				fmt.Fprintf(errw, "pmchaos: replay with: pmchaos -scenarios %s -seed %d -v\n", sc, seed)
			}
		}
		return 1
	}
	return 0
}
