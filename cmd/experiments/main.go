// Command experiments regenerates every table and figure of the paper's
// evaluation (Section VI). Each -figN flag prints the corresponding
// table/series; -all runs everything.
//
//	experiments -table1 -table2 -table3
//	experiments -fig6 -fig7 -fig8 -fig9        # microbenchmark grid
//	experiments -fig10                         # WHISPER suite
//	experiments -fig11a -fig11b                # sensitivity studies
//	experiments -all -full                     # everything, report size
//
// Results are normalized to unsafe-base (the better of sw-ulog/sw-rlog per
// benchmark), exactly as in the paper's figures. Absolute magnitudes
// differ from the paper (different substrate); the shapes — who wins, by
// roughly what factor — are the reproduction target (see EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"pmemlog"
	"pmemlog/internal/bench"
	"pmemlog/internal/prof"
)

func main() {
	var (
		all     = flag.Bool("all", false, "run everything")
		table1  = flag.Bool("table1", false, "Table I: hardware overhead")
		table2  = flag.Bool("table2", false, "Table II: system configuration")
		table3  = flag.Bool("table3", false, "Table III: microbenchmarks")
		fig6    = flag.Bool("fig6", false, "Fig 6: throughput speedup")
		fig7    = flag.Bool("fig7", false, "Fig 7: IPC speedup + instruction count")
		fig8    = flag.Bool("fig8", false, "Fig 8: memory dynamic energy reduction")
		fig9    = flag.Bool("fig9", false, "Fig 9: NVRAM write traffic reduction")
		fig10   = flag.Bool("fig10", false, "Fig 10: WHISPER results")
		fig11a  = flag.Bool("fig11a", false, "Fig 11a: log buffer size sweep")
		fig11b  = flag.Bool("fig11b", false, "Fig 11b: FWB frequency vs log size")
		full    = flag.Bool("full", false, "report-quality sizes (minutes instead of seconds)")
		values  = flag.String("values", "int", "int | str element payloads for the micro grid")
		threads = flag.String("threads", "1,2,4,8", "thread counts for the micro grid")
		verbose = flag.Bool("v", false, "progress output")
		csv     = flag.Bool("csv", false, "CSV output")
		chart   = flag.Bool("chart", false, "append an ASCII bar chart of the fwb column to each figure")
		jsonOut = flag.Bool("json", false, "write the micro grid's raw runs to BENCH_micro.json")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer stopProf()

	p := pmemlog.QuickParams()
	if *full {
		p = pmemlog.FullParams()
	}
	if *values == "str" {
		p.Values = bench.StrValues
	}
	threadCounts := parseThreads(*threads)
	modes := pmemlog.FigureModes()

	var progress func(string, pmemlog.Mode, int)
	if *verbose {
		start := time.Now()
		progress = func(b string, m pmemlog.Mode, th int) {
			fmt.Fprintf(os.Stderr, "[%6.1fs] %s / %s / %dt\n", time.Since(start).Seconds(), b, m, th)
		}
	}

	emit := func(title string, t *pmemlog.Table) {
		fmt.Printf("== %s ==\n", title)
		if *csv {
			fmt.Println(t.CSV())
		} else {
			fmt.Println(t)
		}
		if *chart {
			// The fwb column is the last one in the figure tables.
			if out := t.ChartColumn(len(t.Header)-1, 1.0, 50); out != "" {
				fmt.Println(out)
			}
		}
	}

	cfg := pmemlog.DefaultConfig(pmemlog.FWB, 8)
	if *table1 || *all {
		emit("Table I: hardware overhead of the design", pmemlog.Table1(cfg))
	}
	if *table2 || *all {
		emit("Table II: processor and memory configuration", pmemlog.Table2(cfg))
	}
	if *table3 || *all {
		emit("Table III: microbenchmarks", pmemlog.Table3())
	}

	needGrid := *fig6 || *fig7 || *fig8 || *fig9 || *jsonOut || *all
	if needGrid {
		rs, err := pmemlog.RunMicroGrid(pmemlog.MicroBenchNames(), threadCounts, modes, p, progress)
		if err != nil {
			fatal(err)
		}
		if *fig6 || *all {
			emit("Fig 6: transaction throughput speedup vs unsafe-base (higher is better)",
				pmemlog.Fig6(rs, threadCounts, modes))
		}
		if *fig7 || *all {
			emit("Fig 7a: IPC speedup vs unsafe-base (higher is better)",
				pmemlog.Fig7IPC(rs, threadCounts, modes))
			emit("Fig 7b: instruction count vs unsafe-base (lower is better)",
				pmemlog.Fig7Instr(rs, threadCounts, modes))
		}
		if *fig8 || *all {
			emit("Fig 8: memory dynamic energy reduction vs unsafe-base (higher is better)",
				pmemlog.Fig8(rs, threadCounts, modes))
		}
		if *fig9 || *all {
			emit("Fig 9: NVRAM write traffic reduction vs unsafe-base (higher is better)",
				pmemlog.Fig9(rs, threadCounts, modes))
		}
		if *jsonOut {
			if err := writeJSON("BENCH_micro.json", rs); err != nil {
				fatal(err)
			}
			fmt.Fprintln(os.Stderr, "wrote BENCH_micro.json")
		}
	}

	if *fig10 || *all {
		th := 8
		wmodes := []pmemlog.Mode{pmemlog.NonPers, pmemlog.SWUndo, pmemlog.SWRedo, pmemlog.FWB}
		rs, err := pmemlog.RunWhisperGrid(pmemlog.WhisperNames(), th, wmodes, p, progress)
		if err != nil {
			fatal(err)
		}
		emit(fmt.Sprintf("Fig 10: WHISPER results at %d threads, fwb vs unsafe-base", th),
			pmemlog.Fig10(rs, th))
	}

	if *fig11a || *all {
		t := &pmemlog.Table{Header: []string{"log-buffer-entries", "tput(tx/s)", "speedup-vs-unbuffered"}}
		var base float64
		for _, n := range pmemlog.Fig11aSizes() {
			if progress != nil {
				progress(fmt.Sprintf("fig11a buf=%d", n), pmemlog.FWB, 1)
			}
			r, err := pmemlog.Fig11aPoint(n, 1, p)
			if err != nil {
				fatal(err)
			}
			if base == 0 {
				base = r.Throughput()
			}
			t.Add(n, r.Throughput(), r.Throughput()/base)
		}
		emit("Fig 11a: system throughput vs log buffer size (hash)", t)
	}

	if *fig11b || *all {
		emit("Fig 11b: required FWB scan interval vs log size",
			pmemlog.Fig11b(pmemlog.Fig11bSizes()))
	}
}

// jsonRun is one machine-readable grid point: the raw counters plus the
// derived rates the figures are built from, so downstream tooling never
// re-implements the normalization arithmetic.
type jsonRun struct {
	pmemlog.Run
	ThroughputTxS float64 `json:"throughput_tx_s"`
	IPC           float64 `json:"ipc"`
	TotalEnergyPJ float64 `json:"total_energy_pj"`
}

// writeJSON dumps every run in the set, sorted by (benchmark, mode,
// threads), to path (atomically: temp file + rename).
func writeJSON(path string, rs *pmemlog.RunSet) error {
	runs := rs.Runs()
	out := make([]jsonRun, 0, len(runs))
	for _, r := range runs {
		out = append(out, jsonRun{
			Run:           r,
			ThroughputTxS: r.Throughput(),
			IPC:           r.IPC(),
			TotalEnergyPJ: r.MemEnergyPJ + r.ProcEnergyPJ,
		})
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func parseThreads(s string) []int {
	var out []int
	cur := 0
	has := false
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if has {
				out = append(out, cur)
			}
			cur, has = 0, false
			continue
		}
		if s[i] >= '0' && s[i] <= '9' {
			cur = cur*10 + int(s[i]-'0')
			has = true
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
