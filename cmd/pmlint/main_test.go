package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pmemlog/internal/lint"
)

// repoRoot is where this test runs relative to: cmd/pmlint → ../..
const repoRoot = "../.."

// TestCleanTree is the CI gate in test form: the shipped tree must carry
// zero findings (modulo its reviewed pmlint:allow waivers).
func TestCleanTree(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-C", repoRoot, "./..."}, &out, &errw)
	if code != 0 {
		t.Fatalf("pmlint on the repo exited %d:\n%s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "0 finding(s)") {
		t.Fatalf("summary missing zero-findings count:\n%s", out.String())
	}
}

// TestInjectedViolations builds a throwaway module that replaces pmemlog
// with this repo, plants one violation per core rule, and demonstrates
// that the gate fails — without ever dirtying the real tree.
func TestInjectedViolations(t *testing.T) {
	dir := t.TempDir()
	abs, err := filepath.Abs(repoRoot)
	if err != nil {
		t.Fatal(err)
	}
	gomod := "module probe\n\ngo 1.22\n\nrequire pmemlog v0.0.0-00010101000000-000000000000\n\nreplace pmemlog => " + abs + "\n"
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `package main

import "pmemlog"

func corrupt(sys *pmemlog.System) {
	sys.Poke(0, 1)
}

func leak(ctx pmemlog.Ctx) {
	ctx.TxBegin()
	ctx.Store(0, 1)
}

func bare(ctx pmemlog.Ctx) {
	ctx.Store(0, 2)
}

func main() {}
`
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	sarifPath := filepath.Join(dir, "pmlint.sarif")
	var out, errw bytes.Buffer
	code := run([]string{"-C", dir, "-github", "-sarif", sarifPath, "./..."}, &out, &errw)
	if code != 1 {
		t.Fatalf("pmlint on planted violations exited %d, want 1:\n%s%s", code, out.String(), errw.String())
	}
	text := out.String()
	for _, want := range []string{"[nobackdoor]", "[txnpair]", "[logbeforedata]", "::error file="} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}

	sarif, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatalf("SARIF log not written: %v", err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(sarif, &log); err != nil {
		t.Fatalf("SARIF log does not parse: %v\n%s", err, sarif)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "pmlint" {
		t.Fatalf("SARIF header wrong:\n%s", sarif)
	}
	if got, want := len(log.Runs[0].Tool.Driver.Rules), len(lint.Analyzers()); got != want {
		t.Errorf("SARIF rules lists %d rules, want the full suite of %d", got, want)
	}
	seenRules := make(map[string]bool)
	for _, r := range log.Runs[0].Results {
		seenRules[r.RuleID] = true
		for _, loc := range r.Locations {
			uri := loc.PhysicalLocation.ArtifactLocation.URI
			if filepath.IsAbs(uri) || strings.Contains(uri, "\\") {
				t.Errorf("SARIF artifact URI %q is not a relative slash path", uri)
			}
			if loc.PhysicalLocation.Region.StartLine <= 0 {
				t.Errorf("SARIF result for %s missing a line number", r.RuleID)
			}
		}
	}
	for _, rule := range []string{"nobackdoor", "txnpair", "logbeforedata"} {
		if !seenRules[rule] {
			t.Errorf("SARIF results missing planted %s finding:\n%s", rule, sarif)
		}
	}
}

// TestSARIFWrittenOnCleanRun: code-scanning uploads run unconditionally,
// so a clean tree must still produce a parseable log (with zero results).
func TestSARIFWrittenOnCleanRun(t *testing.T) {
	sarifPath := filepath.Join(t.TempDir(), "clean.sarif")
	var out, errw bytes.Buffer
	code := run([]string{"-C", repoRoot, "-sarif", sarifPath, "./cmd/pmlint"}, &out, &errw)
	if code != 0 {
		t.Fatalf("pmlint on cmd/pmlint exited %d:\n%s%s", code, out.String(), errw.String())
	}
	sarif, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatalf("SARIF log not written on clean run: %v", err)
	}
	var log struct {
		Runs []struct {
			Results []any `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(sarif, &log); err != nil {
		t.Fatalf("clean SARIF log does not parse: %v", err)
	}
	if len(log.Runs) != 1 || len(log.Runs[0].Results) != 0 {
		t.Fatalf("clean run should carry one run with zero results:\n%s", sarif)
	}
}

// TestStaleAllowFailsGate: a //pmlint:allow that suppresses nothing is
// itself a finding, so the waiver audit is part of the default exit code.
func TestStaleAllowFailsGate(t *testing.T) {
	dir := t.TempDir()
	abs, err := filepath.Abs(repoRoot)
	if err != nil {
		t.Fatal(err)
	}
	gomod := "module probe\n\ngo 1.22\n\nrequire pmemlog v0.0.0-00010101000000-000000000000\n\nreplace pmemlog => " + abs + "\n"
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `package main

import "pmemlog"

func fine(ctx pmemlog.Ctx) {
	//pmlint:allow txnpair -- stale: nothing here needs waiving
	ctx.TxBegin()
	ctx.Store(0, 1)
	ctx.TxCommit()
}

func main() {}
`
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errw bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &out, &errw)
	if code != 1 {
		t.Fatalf("stale allow exited %d, want 1:\n%s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "unused pmlint:allow directive") {
		t.Fatalf("expected an unused-directive finding:\n%s", out.String())
	}
}

// TestOnlyAndList exercises the flag surface: -list inventories the
// suite, -only restricts it, and an unknown rule is a usage error.
func TestOnlyAndList(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, rule := range []string{"txnpair", "nobackdoor", "quiesceorder", "lockdiscipline"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-list missing rule %s:\n%s", rule, out.String())
		}
	}

	out.Reset()
	errw.Reset()
	if code := run([]string{"-only", "nosuchrule", "./..."}, &out, &errw); code != 2 {
		t.Fatalf("-only nosuchrule exited %d, want 2", code)
	}

	// "flow" expands to the CFG-based ordering group; the tree is clean
	// under it (this is the make ci smoke invocation).
	out.Reset()
	errw.Reset()
	if code := run([]string{"-C", repoRoot, "-only", "flow", "./..."}, &out, &errw); code != 0 {
		t.Fatalf("-only flow exited %d:\n%s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "0 finding(s)") {
		t.Fatalf("-only flow summary missing zero-findings count:\n%s", out.String())
	}

	out.Reset()
	errw.Reset()
	if code := run([]string{"-C", repoRoot, "-only", "quiesceorder", "./cmd/pmrecover"}, &out, &errw); code != 0 {
		t.Fatalf("-only quiesceorder on cmd/pmrecover exited %d:\n%s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "2 suppressed") {
		t.Fatalf("expected pmrecover's quiesceorder waiver to register as suppressed:\n%s", out.String())
	}
}
