package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot is where this test runs relative to: cmd/pmlint → ../..
const repoRoot = "../.."

// TestCleanTree is the CI gate in test form: the shipped tree must carry
// zero findings (modulo its reviewed pmlint:allow waivers).
func TestCleanTree(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-C", repoRoot, "./..."}, &out, &errw)
	if code != 0 {
		t.Fatalf("pmlint on the repo exited %d:\n%s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "0 finding(s)") {
		t.Fatalf("summary missing zero-findings count:\n%s", out.String())
	}
}

// TestInjectedViolations builds a throwaway module that replaces pmemlog
// with this repo, plants one violation per core rule, and demonstrates
// that the gate fails — without ever dirtying the real tree.
func TestInjectedViolations(t *testing.T) {
	dir := t.TempDir()
	abs, err := filepath.Abs(repoRoot)
	if err != nil {
		t.Fatal(err)
	}
	gomod := "module probe\n\ngo 1.22\n\nrequire pmemlog v0.0.0-00010101000000-000000000000\n\nreplace pmemlog => " + abs + "\n"
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `package main

import "pmemlog"

func corrupt(sys *pmemlog.System) {
	sys.Poke(0, 1)
}

func leak(ctx pmemlog.Ctx) {
	ctx.TxBegin()
	ctx.Store(0, 1)
}

func main() {}
`
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errw bytes.Buffer
	code := run([]string{"-C", dir, "-github", "./..."}, &out, &errw)
	if code != 1 {
		t.Fatalf("pmlint on planted violations exited %d, want 1:\n%s%s", code, out.String(), errw.String())
	}
	text := out.String()
	for _, want := range []string{"[nobackdoor]", "[txnpair]", "::error file="} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

// TestOnlyAndList exercises the flag surface: -list inventories the
// suite, -only restricts it, and an unknown rule is a usage error.
func TestOnlyAndList(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, rule := range []string{"txnpair", "nobackdoor", "quiesceorder", "lockdiscipline"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-list missing rule %s:\n%s", rule, out.String())
		}
	}

	out.Reset()
	errw.Reset()
	if code := run([]string{"-only", "nosuchrule", "./..."}, &out, &errw); code != 2 {
		t.Fatalf("-only nosuchrule exited %d, want 2", code)
	}

	out.Reset()
	errw.Reset()
	if code := run([]string{"-C", repoRoot, "-only", "quiesceorder", "./cmd/pmrecover"}, &out, &errw); code != 0 {
		t.Fatalf("-only quiesceorder on cmd/pmrecover exited %d:\n%s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "1 suppressed") {
		t.Fatalf("expected pmrecover's quiesceorder waiver to register as suppressed:\n%s", out.String())
	}
}
