// Command pmlint runs the persistence-domain analyzers over the module,
// in the spirit of a go/analysis multichecker:
//
//	go run ./cmd/pmlint ./...
//
// It exits 0 when the tree is clean, 1 when any finding survives the
// //pmlint:allow filter, and 2 on usage or load errors. With -github it
// emits GitHub Actions ::error annotations alongside the plain report,
// so CI failures land on the offending line in the diff view; -sarif
// additionally writes a SARIF 2.1.0 log (always, clean runs included)
// for code-scanning upload. -only takes rule names or the "flow" group
// (the CFG/dominance ordering rules).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"pmemlog/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("pmlint", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		only   = fs.String("only", "", "comma-separated subset of rules to run; \"flow\" names the CFG-based group (default: all)")
		github = fs.Bool("github", false, "also emit GitHub Actions ::error annotations")
		sarif  = fs.String("sarif", "", "write a SARIF 2.1.0 log to `file` (written on clean runs too)")
		list   = fs.Bool("list", false, "list the available rules and exit")
		dir    = fs.String("C", ".", "change to `dir` before resolving package patterns")
	)
	fs.Usage = func() {
		fmt.Fprintf(errw, "usage: pmlint [flags] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	all := lint.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Fprintf(out, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(all, *only)
	if err != nil {
		fmt.Fprintf(errw, "pmlint: %v\n", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(errw, "pmlint: %v\n", err)
		return 2
	}

	// One Module over every loaded package, so interprocedural effect
	// summaries and call-graph credit cross package boundaries (main's
	// call into a library's may-persist helper, and vice versa).
	mod := lint.NewModule(pkgs)

	active := lint.RuleSet(analyzers)
	known := lint.RuleSet(all)
	findings := 0
	suppressed := 0
	var allKept []lint.Diagnostic
	for _, pkg := range pkgs {
		diags := mod.Run(pkg, analyzers)
		kept, n := lint.ApplyAllows(pkg.Fset, pkg.Files, diags, active, known)
		suppressed += n
		allKept = append(allKept, kept...)
		for _, d := range kept {
			findings++
			fmt.Fprintln(out, d.String())
			if *github {
				fmt.Fprintf(out, "::error file=%s,line=%d,col=%d::%s [%s]\n",
					d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Rule)
			}
		}
	}

	if *sarif != "" {
		// SARIF artifact locations are repo-relative URIs: strip the -C
		// directory prefix so code-scanning matches files from the root.
		if abs, err := filepath.Abs(*dir); err == nil {
			for i := range allKept {
				if rel, err := filepath.Rel(abs, allKept[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
					allKept[i].Pos.Filename = filepath.ToSlash(rel)
				}
			}
		}
		f, err := os.Create(*sarif)
		if err != nil {
			fmt.Fprintf(errw, "pmlint: %v\n", err)
			return 2
		}
		werr := lint.WriteSARIF(f, analyzers, allKept)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(errw, "pmlint: writing SARIF: %v\n", werr)
			return 2
		}
	}

	fmt.Fprintf(out, "pmlint: %d package(s), %d finding(s), %d suppressed by pmlint:allow\n",
		len(pkgs), findings, suppressed)
	if findings > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -only flag against the suite. Besides
// rule names it accepts the group name "flow" for the CFG/dominance
// ordering rules, the CI smoke-test subset.
func selectAnalyzers(all []*lint.Analyzer, only string) ([]*lint.Analyzer, error) {
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	seen := make(map[string]bool)
	var picked []*lint.Analyzer
	pick := func(a *lint.Analyzer) {
		if !seen[a.Name] {
			seen[a.Name] = true
			picked = append(picked, a)
		}
	}
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if name == "flow" {
			for _, a := range lint.FlowAnalyzers() {
				pick(a)
			}
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (try -list)", name)
		}
		pick(a)
	}
	if len(picked) == 0 {
		return nil, fmt.Errorf("-only selected no rules")
	}
	return picked, nil
}
