// Command pmlint runs the persistence-domain analyzers over the module,
// in the spirit of a go/analysis multichecker:
//
//	go run ./cmd/pmlint ./...
//
// It exits 0 when the tree is clean, 1 when any finding survives the
// //pmlint:allow filter, and 2 on usage or load errors. With -github it
// emits GitHub Actions ::error annotations alongside the plain report,
// so CI failures land on the offending line in the diff view.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pmemlog/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("pmlint", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		only   = fs.String("only", "", "comma-separated subset of rules to run (default: all)")
		github = fs.Bool("github", false, "also emit GitHub Actions ::error annotations")
		list   = fs.Bool("list", false, "list the available rules and exit")
		dir    = fs.String("C", ".", "change to `dir` before resolving package patterns")
	)
	fs.Usage = func() {
		fmt.Fprintf(errw, "usage: pmlint [flags] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	all := lint.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Fprintf(out, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(all, *only)
	if err != nil {
		fmt.Fprintf(errw, "pmlint: %v\n", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(errw, "pmlint: %v\n", err)
		return 2
	}

	active := lint.RuleSet(analyzers)
	known := lint.RuleSet(all)
	findings := 0
	suppressed := 0
	for _, pkg := range pkgs {
		diags := lint.RunAnalyzers(pkg, analyzers)
		kept, n := lint.ApplyAllows(pkg.Fset, pkg.Files, diags, active, known)
		suppressed += n
		for _, d := range kept {
			findings++
			fmt.Fprintln(out, d.String())
			if *github {
				fmt.Fprintf(out, "::error file=%s,line=%d,col=%d::%s [%s]\n",
					d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Rule)
			}
		}
	}

	fmt.Fprintf(out, "pmlint: %d package(s), %d finding(s), %d suppressed by pmlint:allow\n",
		len(pkgs), findings, suppressed)
	if findings > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -only flag against the suite.
func selectAnalyzers(all []*lint.Analyzer, only string) ([]*lint.Analyzer, error) {
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (try -list)", name)
		}
		picked = append(picked, a)
	}
	if len(picked) == 0 {
		return nil, fmt.Errorf("-only selected no rules")
	}
	return picked, nil
}
