// Command pmtop is the live operator dashboard for pmserver: it polls
// the /pulse.json windowed-telemetry document and renders per-shard
// throughput and pressure bars, the per-op windowed quantile table, the
// stage-latency waterfall (where the end-to-end tail is spent: routing,
// queueing, machine txns, forced write-back, ack), wrap-pressure and
// throughput trend sparklines, SLO burn, and the slowest requests of
// the window with their stage breakdown:
//
//	pmtop -addr 127.0.0.1:8080
//	pmtop -addr 127.0.0.1:8080 -once
//	pmtop -addr 127.0.0.1:8080 -interval 2s -windows 10
//
// -once renders a single frame (no ANSI control sequences) and exits —
// deterministic output for scripts, CI smoke tests, and bug reports.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"pmemlog/internal/obs/pulse"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("pmtop", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "pmserver HTTP address (the -http-addr listener)")
		interval = fs.Duration("interval", time.Second, "refresh period in live mode")
		windows  = fs.Int("windows", 5, "completed pulse windows the summary aggregates")
		width    = fs.Int("width", 80, "render width in columns")
		once     = fs.Bool("once", false, "render one frame without ANSI control and exit")
	)
	fs.Usage = func() {
		fmt.Fprintf(errw, "usage: pmtop [flags]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return 2
	}

	fetch := func() (*pulse.Doc, error) {
		return fetchDoc(fmt.Sprintf("http://%s/pulse.json?windows=%d", *addr, *windows))
	}
	if *once {
		d, err := fetch()
		if err != nil {
			fmt.Fprintf(errw, "pmtop: %v\n", err)
			return 1
		}
		render(out, d, *width)
		return 0
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		d, err := fetch()
		// Clear screen + home between frames; an unreachable server shows
		// the error in place of a frame and keeps polling.
		fmt.Fprint(out, "\x1b[2J\x1b[H")
		if err != nil {
			fmt.Fprintf(out, "pmtop: %v (retrying every %s)\n", err, *interval)
		} else {
			render(out, d, *width)
		}
		select {
		case <-sig:
			return 0
		case <-tick.C:
		}
	}
}

func fetchDoc(url string) (*pulse.Doc, error) {
	client := http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	var d pulse.Doc
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return nil, fmt.Errorf("%s: %v", url, err)
	}
	if d.Version != pulse.DocVersion {
		return nil, fmt.Errorf("%s: document version %d, pmtop speaks %d", url, d.Version, pulse.DocVersion)
	}
	return &d, nil
}

// render draws one frame. Pure function of the document (plus width):
// -once output is byte-for-byte reproducible for a given document.
func render(w io.Writer, d *pulse.Doc, width int) {
	if width < 60 {
		width = 60
	}
	fmt.Fprintf(w, "pmserver %s  mode=%s  up %s  window %s x%d  seq %d\n",
		d.Addr, d.Mode, time.Duration(d.UptimeNS).Truncate(time.Second),
		time.Duration(d.IntervalNS), d.WindowsAggregated, d.Seq)
	if d.WindowsAggregated == 0 {
		fmt.Fprintf(w, "\n  no completed telemetry window yet — is the server just up?\n")
		return
	}

	// Shards: throughput bars scaled to the busiest shard, plus queue
	// fill, log occupancy, and wrap pressure.
	sortShardsByID(d.Shards)
	var maxTput float64
	for _, sd := range d.Shards {
		if sd.ThroughputPerSec > maxTput {
			maxTput = sd.ThroughputPerSec
		}
	}
	barW := width - 58
	fmt.Fprintf(w, "\nSHARDS        req/s%s  queue  occ%%  wrap/s  save/s\n", strings.Repeat(" ", barW+3))
	for _, sd := range d.Shards {
		frac := 0.0
		if maxTput > 0 {
			frac = sd.ThroughputPerSec / maxTput
		}
		queue := 0.0
		if sd.QueueCap > 0 {
			queue = float64(sd.QueueLen) / float64(sd.QueueCap)
		}
		fmt.Fprintf(w, "  %3d %10.0f  %s  %4.0f%%  %3.0f%%  %6.2f  %6.1f\n",
			sd.Shard, sd.ThroughputPerSec, bar(frac, barW),
			100*queue, 100*sd.LogOccupancy, sd.WrapRatePerSec, sd.SavesPerSec)
	}

	// Ops: windowed quantile table.
	fmt.Fprintf(w, "\nOPS      count    req/s      p50      p95      p99    p99.9      max\n")
	for _, op := range d.Ops {
		if op.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-5s %7d %8.0f %8s %8s %8s %8s %8s\n",
			op.Op, op.Count, op.RatePerSec,
			ns(op.P50NS), ns(op.P95NS), ns(op.P99NS), ns(op.P999NS), ns(op.MaxNS))
	}

	// Persistence: the scope cost-accounting panel — write-amplification
	// bar per shard (scaled to the worst shard), coalescible fraction,
	// and the wrap forecast. This is the paper's economics live: how many
	// NVRAM bytes each payload byte really costs, and how long the
	// circular log can absorb it.
	renderScope(w, d, width)

	// Stage waterfall: where the e2e p99 is spent. Bars scale to the
	// whole e2e p99, so stacked lengths read as shares of the tail.
	fmt.Fprintf(w, "\nSTAGES (e2e p99 %s, share of tail)\n", ns(d.E2E.P99NS))
	stageBarW := width - 36
	for _, st := range d.Stages {
		if st.Count == 0 {
			continue
		}
		share := st.ShareP99
		fmt.Fprintf(w, "  %-7s %8s %5.1f%%  %s\n",
			st.Stage, ns(st.P99NS), 100*share, bar(share, stageBarW))
	}

	// Trends over the retained windows, oldest to newest.
	fmt.Fprintf(w, "\nTREND (last %d windows)\n", d.WindowsRetained)
	fmt.Fprintf(w, "  req/s  %s\n", spark(d.History.ThroughputPerSec, width-10))
	fmt.Fprintf(w, "  wrap   %s\n", spark(d.History.WrapRatePerSec, width-10))
	fmt.Fprintf(w, "  p99    %s\n", sparkU(d.History.P99NS, width-10))

	// SLO burn.
	burn := "ok"
	if d.SLO.BurnRate >= 1 {
		burn = "BURNING"
	}
	fmt.Fprintf(w, "\nSLO  objective %s  budget %.3f%%  bad %d/%d  burn %.2fx (%s)\n",
		ns(uint64(d.SLO.ObjectiveNS)), 100*d.SLO.Budget, d.SLO.Bad, d.SLO.Total, d.SLO.BurnRate, burn)

	// Tail exemplars: the slowest requests with their stage breakdown,
	// span IDs resolvable against a flight dump (pmdoctor -span).
	if len(d.Exemplars) > 0 {
		fmt.Fprintf(w, "\nSLOWEST (span: e2e = route+queue+apply+fwb+ack)\n")
		for i, ex := range d.Exemplars {
			if i >= 4 {
				break
			}
			fmt.Fprintf(w, "  %d %s shard %d: %s = %s+%s+%s+%s+%s\n",
				ex.SpanID, ex.Op, ex.Shard, ns(uint64(ex.LatNS)),
				nsOpt(ex.RouteNS), nsOpt(ex.QueueNS), nsOpt(ex.ApplyNS), nsOpt(ex.FwbNS), nsOpt(ex.AckNS))
		}
	}
}

// renderScope draws the persistence panel from the document's scope
// section.
func renderScope(w io.Writer, d *pulse.Doc, width int) {
	sc := &d.Scope
	if len(sc.Shards) == 0 {
		return
	}
	var maxAmp float64
	for _, s := range sc.Shards {
		if s.WriteAmp > maxAmp {
			maxAmp = s.WriteAmp
		}
	}
	fmt.Fprintf(w, "\nPERSISTENCE  amp %.2fx  payload %s/s  log %s/s  wb %s/s  coalescible %.1f%%\n",
		sc.WriteAmp, bytesHuman(sc.PayloadBytesPerSec), bytesHuman(sc.LogBytesPerSec),
		bytesHuman(sc.WBBytesPerSec), 100*sc.CoalescibleFraction)
	barW := width - 54
	for _, s := range sc.Shards {
		frac := 0.0
		if maxAmp > 0 {
			frac = s.WriteAmp / maxAmp
		}
		fmt.Fprintf(w, "  %3d amp %6.2fx %s  coal %4.1f%%  wrap %s  live %d\n",
			s.Shard, s.WriteAmp, bar(frac, barW),
			100*s.CoalescibleFraction, etaHuman(s.WrapETASeconds), s.LiveRecords)
	}
}

// bytesHuman formats a bytes-per-second rate compactly.
func bytesHuman(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1fGiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}

// etaHuman formats a forecast in seconds; negative means unknown.
func etaHuman(secs float64) string {
	if secs < 0 {
		return "-"
	}
	if secs < 10 {
		return fmt.Sprintf("%.1fs", secs)
	}
	return (time.Duration(secs) * time.Second).Truncate(time.Second).String()
}

// bar renders a fill fraction as a fixed-width block bar.
func bar(frac float64, width int) string {
	if width < 1 {
		width = 1
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return strings.Repeat("█", n) + strings.Repeat("░", width-n)
}

var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// spark renders a series as a sparkline scaled to its own max, most
// recent value last; series longer than width keep the newest points.
func spark(vals []float64, width int) string {
	if len(vals) > width && width > 0 {
		vals = vals[len(vals)-width:]
	}
	var max float64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return strings.Repeat("▁", len(vals))
	}
	var b strings.Builder
	for _, v := range vals {
		lvl := int(v / max * float64(len(sparkLevels)-1))
		if lvl < 0 {
			lvl = 0
		}
		b.WriteRune(sparkLevels[lvl])
	}
	return b.String()
}

func sparkU(vals []uint64, width int) string {
	f := make([]float64, len(vals))
	for i, v := range vals {
		f[i] = float64(v)
	}
	return spark(f, width)
}

// ns formats nanoseconds compactly (1.2ms, 340µs, 15s).
func ns(v uint64) string {
	d := time.Duration(v)
	switch {
	case d == 0:
		return "0"
	case d < 10*time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < 10*time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	case d < 10*time.Second:
		return fmt.Sprintf("%dms", d.Milliseconds())
	default:
		return d.Truncate(time.Second).String()
	}
}

// nsOpt formats a stage duration, "-" when the mark was missing.
func nsOpt(v int64) string {
	if v < 0 {
		return "-"
	}
	return ns(uint64(v))
}

// sortShardsByID keeps the render order stable regardless of document
// order (the server emits shards ordered already; defensive).
func sortShardsByID(shards []pulse.ShardDoc) {
	sort.Slice(shards, func(a, b int) bool { return shards[a].Shard < shards[b].Shard })
}
