package main

import (
	"bytes"
	"io"
	"log"
	"strings"
	"testing"
	"time"

	"pmemlog/internal/obs/pulse"
	"pmemlog/internal/server"
	"pmemlog/internal/txn"
)

// fixtureDoc is a hand-built document exercising every render section.
func fixtureDoc() *pulse.Doc {
	return &pulse.Doc{
		Version: pulse.DocVersion, Addr: "127.0.0.1:7070", Mode: "fwb",
		CapturedAtNS: 61_500_000_000, UptimeNS: 61_500_000_000,
		IntervalNS: int64(time.Second), Seq: 61,
		WindowsAggregated: 5, WindowsRetained: 8,
		Shards: []pulse.ShardDoc{
			{Shard: 1, ThroughputPerSec: 1200, QueueLen: 8, QueueCap: 256, LogOccupancy: 0.42, WrapRatePerSec: 0.7, SavesPerSec: 40},
			{Shard: 0, ThroughputPerSec: 2400, QueueLen: 64, QueueCap: 256, LogOccupancy: 0.81, WrapRatePerSec: 1.9, SavesPerSec: 55},
		},
		Ops: []pulse.OpDoc{
			{Op: "get", Quantiles: pulse.Quantiles{Count: 9000, RatePerSec: 1800, P50NS: 21_000, P95NS: 55_000, P99NS: 120_000, P999NS: 300_000, MaxNS: 410_000}},
			{Op: "put", Quantiles: pulse.Quantiles{Count: 9000, RatePerSec: 1800, P50NS: 380_000, P95NS: 900_000, P99NS: 1_400_000, P999NS: 2_100_000, MaxNS: 2_600_000}},
		},
		Stages: []pulse.StageDoc{
			{Stage: "route", Quantiles: pulse.Quantiles{Count: 18000, P99NS: 9_000}, ShareP99: 0.006},
			{Stage: "queue", Quantiles: pulse.Quantiles{Count: 18000, P99NS: 180_000}, ShareP99: 0.13},
			{Stage: "apply", Quantiles: pulse.Quantiles{Count: 18000, P99NS: 260_000}, ShareP99: 0.19},
			{Stage: "fwb", Quantiles: pulse.Quantiles{Count: 18000, P99NS: 890_000}, ShareP99: 0.64},
			{Stage: "ack", Quantiles: pulse.Quantiles{Count: 18000, P99NS: 45_000}, ShareP99: 0.032},
		},
		Scope: pulse.ScopeDoc{
			WriteAmp: 5.21, PayloadBytesPerSec: 28_800, LogBytesPerSec: 115_200,
			WBBytesPerSec: 34_816, CoalescibleFraction: 0.31,
			Shards: []pulse.ScopeShardDoc{
				{Shard: 0, WriteAmp: 6.4, TxnWriteAmpMean: 4.8, CoalescibleFraction: 0.42,
					WastedForcedFraction: 0.1, LiveRecords: 910, ReplayEstRecords: 910,
					WrapETASeconds: 42.5, FullETASeconds: 130},
				{Shard: 1, WriteAmp: 4.1, TxnWriteAmpMean: 3.9, CoalescibleFraction: 0.2,
					LiveRecords: 340, ReplayEstRecords: 340,
					WrapETASeconds: -1, FullETASeconds: -1},
			},
		},
		E2E: pulse.Quantiles{Count: 18000, RatePerSec: 3600, P50NS: 200_000, P99NS: 1_390_000},
		SLO: pulse.SLODoc{ObjectiveNS: 20_000_000, Budget: 0.001, Total: 18000, Bad: 2, BadFraction: 2.0 / 18000, BurnRate: 0.11},
		Exemplars: []pulse.ExemplarDoc{
			{SpanID: 8589934612, Op: "put", Shard: 0, LatNS: 2_600_000,
				RouteNS: 4_000, QueueNS: 900_000, ApplyNS: 310_000, FwbNS: 1_370_000, AckNS: 16_000},
			{SpanID: 8589934899, Op: "txn", Shard: 1, LatNS: 2_200_000,
				RouteNS: 5_000, QueueNS: 700_000, ApplyNS: 400_000, FwbNS: -1, AckNS: -1},
		},
		History: pulse.HistoryDoc{
			WindowNS:         []int64{1e9, 1e9, 1e9, 1e9, 1e9, 1e9, 1e9, 1e9},
			ThroughputPerSec: []float64{100, 900, 1800, 2500, 3600, 3400, 3500, 3600},
			WrapRatePerSec:   []float64{0, 0.1, 0.4, 0.9, 1.9, 1.7, 1.8, 1.9},
			P99NS:            []uint64{80_000, 300_000, 700_000, 1_000_000, 1_390_000, 1_300_000, 1_350_000, 1_390_000},
			BurnRate:         []float64{0, 0, 0, 0.05, 0.11, 0.1, 0.11, 0.11},
		},
	}
}

// TestRenderFixture pins the -once frame layout: every section present,
// shards sorted, stage shares and exemplars rendered, byte-identical
// across runs (the render is a pure function of the document).
func TestRenderFixture(t *testing.T) {
	var a, b bytes.Buffer
	render(&a, fixtureDoc(), 80)
	render(&b, fixtureDoc(), 80)
	if a.String() != b.String() {
		t.Fatal("render is not deterministic")
	}
	out := a.String()
	for _, want := range []string{
		"pmserver 127.0.0.1:7070  mode=fwb",
		"SHARDS", "OPS", "STAGES (e2e p99 1390µs", "TREND", "SLO", "SLOWEST",
		"PERSISTENCE  amp 5.21x  payload 28.1KiB/s  log 112.5KiB/s  wb 34.0KiB/s  coalescible 31.0%",
		"  6.40x", "wrap 42s", "wrap -", "coal 42.0%", "live 910",
		"fwb     ", "890µs", "64.0%",
		"8589934612 put shard 0: 2600µs = 4000ns+900µs+310µs+1370µs+16µs",
		"= 5000ns+700µs+400µs+-+-", // missing marks render as "-"
		"▁",                        // sparkline levels present
		"burn 0.11x (ok)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("frame missing %q:\n%s", want, out)
		}
	}
	// Shards render in ID order even though the document was unordered.
	if s0 := strings.Index(out, "\n    0 "); s0 < 0 || s0 > strings.Index(out, "\n    1 ") {
		t.Fatalf("shards not sorted by ID:\n%s", out)
	}
}

func TestRenderEmptyDoc(t *testing.T) {
	var buf bytes.Buffer
	render(&buf, &pulse.Doc{Version: pulse.DocVersion, Addr: "x", Mode: "fwb"}, 80)
	if !strings.Contains(buf.String(), "no completed telemetry window") {
		t.Fatalf("empty-doc frame: %s", buf.String())
	}
}

// TestOnceAgainstLiveServer is the end-to-end smoke: boot a real
// pmserver, drive spanned traffic, close a pulse window, and run
// pmtop -once against the live /pulse.json — the frame must show real
// per-shard throughput, the full stage waterfall, and an exemplar.
func TestOnceAgainstLiveServer(t *testing.T) {
	cfg := server.Config{
		Addr: "127.0.0.1:0", Dir: t.TempDir(),
		Shards: 2, Mode: txn.FWB, QueueDepth: 128, BatchMax: 8,
		Buckets: 128, NVRAMBytes: 2 << 20, LogBytes: 64 << 10, L2Bytes: 64 << 10,
		HTTPAddr:      "127.0.0.1:0",
		PulseInterval: time.Hour, // the test closes the window itself
		SlowThreshold: time.Nanosecond,
		Logger:        log.New(io.Discard, "", 0),
	}
	srv, err := server.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	c, err := server.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.MaxRetries = 10
	c.EnableSpans()
	for i := 0; i < 48; i++ {
		if err := c.Put([]byte{byte(i), byte(i >> 4)}, []byte("pmtop-smoke")); err != nil {
			t.Fatal(err)
		}
	}
	srv.Pulse().Tick()

	var out, errw bytes.Buffer
	if code := run([]string{"-addr", srv.HTTPAddr(), "-once", "-windows", "1"}, &out, &errw); code != 0 {
		t.Fatalf("pmtop -once exited %d: %s", code, errw.String())
	}
	frame := out.String()
	for _, want := range []string{"SHARDS", "put", "route", "queue", "apply", "fwb", "ack", "SLOWEST"} {
		if !strings.Contains(frame, want) {
			t.Fatalf("live frame missing %q:\n%s", want, frame)
		}
	}
	if strings.Contains(frame, "\x1b[") {
		t.Fatal("-once frame contains ANSI control sequences")
	}

	// An unreachable server is an error exit, not a hang or a panic.
	if code := run([]string{"-addr", "127.0.0.1:1", "-once"}, &out, &errw); code != 1 {
		t.Fatalf("unreachable server: exit %d", code)
	}
}
