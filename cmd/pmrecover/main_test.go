package main

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pmemlog"
	"pmemlog/internal/bench"
)

// TestCrashTrialsConsistent drives the command's own trial loop body over
// randomized crash points: every trial must recover to a consistent state
// (committed durable, uncommitted rolled back).
func TestCrashTrialsConsistent(t *testing.T) {
	const threads, txns = 2, 60
	total, err := runOnce(pmemlog.FWB, "hash", threads, txns, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("probe run reported zero cycles")
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 6; trial++ {
		crashAt := uint64(rng.Int63n(int64(total))) + 1
		if _, err := runOnce(pmemlog.FWB, "hash", threads, txns, crashAt, ""); err != nil {
			t.Fatalf("trial %d (crash@%d): %v", trial, crashAt, err)
		}
	}
}

// TestSaveImageAttachRecover is the cross-process e2e path: crash
// mid-workload, save the DIMM image to disk, attach it from a fresh
// machine (the command's -load-image path), and assert the recovered heap
// matches the crashed machine's committed-state oracle word for word.
func TestSaveImageAttachRecover(t *testing.T) {
	const threads, txns = 2, 60
	total, err := runOnce(pmemlog.FWB, "hash", threads, txns, 0, "")
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		crashAt := uint64(rng.Int63n(int64(total))) + 1

		// The crashing "process", mirroring runOnce but keeping the system
		// so its oracle survives for the audit.
		sys, err := buildSystem(pmemlog.FWB, threads)
		if err != nil {
			t.Fatal(err)
		}
		w, err := bench.New("hash", bench.Config{
			Elements: 4096, TxnsPerThread: txns, Threads: threads, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Setup(sys); err != nil {
			t.Fatal(err)
		}
		sys.ScheduleCrash(crashAt)
		if err := sys.RunN(w.Run); !errors.Is(err, pmemlog.ErrCrashed) {
			t.Fatalf("trial %d: run ended without crashing: %v", trial, err)
		}
		path := filepath.Join(t.TempDir(), "crash.img")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.SaveNVRAM(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}

		// The command's -load-image path must succeed end to end.
		if err := attachAndRecover("fwb", threads, path, false); err != nil {
			t.Fatalf("trial %d: attachAndRecover: %v", trial, err)
		}

		// In-process recovery is the ground truth: it must satisfy the
		// committed-state oracle (durably-committed transactions present,
		// uncommitted rolled back; a transaction whose commit record was
		// still in the volatile log buffer at power-cut may legitimately
		// land on either side).
		rep, err := sys.Recover()
		if err != nil {
			t.Fatalf("trial %d: in-process recover: %v", trial, err)
		}
		if len(sys.CommittedOracle()) == 0 {
			t.Fatalf("trial %d: committed-state oracle is empty; crash@%d too early to prove anything", trial, crashAt)
		}
		if bad := sys.VerifyRecovery(rep, crashAt); len(bad) > 0 {
			t.Fatalf("trial %d: %d oracle violations, first: %s", trial, len(bad), bad[0])
		}

		// Cross-process recovery of the saved image must then reproduce the
		// in-process result exactly — the -save-image / -load-image round
		// trip loses nothing.
		fresh, err := buildSystem(pmemlog.FWB, threads)
		if err != nil {
			t.Fatal(err)
		}
		f2, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.LoadNVRAM(f2); err != nil {
			t.Fatal(err)
		}
		f2.Close()
		if _, err := fresh.Recover(); err != nil {
			t.Fatalf("trial %d: cross-process recover: %v", trial, err)
		}
		var inProc, crossProc bytes.Buffer
		if err := sys.SaveNVRAM(&inProc); err != nil {
			t.Fatal(err)
		}
		if err := fresh.SaveNVRAM(&crossProc); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(inProc.Bytes(), crossProc.Bytes()) {
			t.Fatalf("trial %d: cross-process recovered image diverges from in-process recovery", trial)
		}
	}
}
