// Command pmrecover demonstrates the paper's crash-recovery path: it runs
// a transactional workload, cuts power at a chosen (or random) cycle,
// runs the four-step recovery procedure (Section IV-F) against the
// surviving NVRAM image, and verifies atomicity + durability against the
// committed-state oracle.
//
//	pmrecover -mode fwb -crash-frac 0.5
//	pmrecover -mode fwb -trials 20            # randomized crash points
//	pmrecover -mode sw-ulog                   # watch an UNSAFE design fail
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"pmemlog"
	"pmemlog/internal/bench"
)

func main() {
	var (
		modeName  = flag.String("mode", "fwb", "design to crash-test")
		benchName = flag.String("bench", "hash", "microbenchmark workload")
		threads   = flag.Int("threads", 2, "hardware threads")
		crashFrac = flag.Float64("crash-frac", -1, "crash point as a fraction of the run (negative = random)")
		trials    = flag.Int("trials", 5, "number of crash trials")
		seed      = flag.Int64("seed", 1, "crash-point RNG seed")
		txns      = flag.Int("txns", 150, "transactions per thread")
		saveImage = flag.String("save-image", "", "after the first crash, save the NVRAM DIMM image to this file (pre-recovery)")
		loadImage = flag.String("load-image", "", "attach a saved DIMM image, recover it, and dump the log")
		dumpLog   = flag.Bool("dump-log", false, "print the surviving log records before recovery")
	)
	flag.Parse()

	if *loadImage != "" {
		if err := attachAndRecover(*modeName, *threads, *loadImage, *dumpLog); err != nil {
			fatal(err)
		}
		return
	}

	mode, err := pmemlog.ParseMode(*modeName)
	if err != nil {
		fatal(err)
	}

	// Probe run: learn the uncrashed duration.
	//pmlint:allow quiesceorder -- runOnce deliberately saves mid-crash images without draining; quiescing would destroy the crash evidence
	total, err := runOnce(mode, *benchName, *threads, *txns, 0, "")
	if err != nil {
		fatal(err)
	}
	fmt.Printf("uncrashed run: %d cycles\n", total)

	rng := rand.New(rand.NewSource(*seed))
	failures := 0
	for trial := 0; trial < *trials; trial++ {
		var crashAt uint64
		if *crashFrac >= 0 {
			crashAt = uint64(*crashFrac * float64(total))
		} else {
			crashAt = uint64(rng.Int63n(int64(total))) + 1
		}
		save := ""
		if trial == 0 {
			save = *saveImage
		}
		//pmlint:allow quiesceorder -- runOnce deliberately saves mid-crash images without draining; quiescing would destroy the crash evidence
		if _, err := runOnce(mode, *benchName, *threads, *txns, crashAt, save); err != nil {
			failures++
			fmt.Printf("trial %2d: crash@%-10d  VIOLATION: %v\n", trial, crashAt, err)
		} else {
			fmt.Printf("trial %2d: crash@%-10d  consistent\n", trial, crashAt)
		}
		if *crashFrac >= 0 {
			break
		}
	}
	if failures > 0 {
		spec := mode.Spec()
		if !spec.Persistent {
			fmt.Printf("\n%d/%d trials inconsistent — expected: %q gives NO persistence guarantee.\n",
				failures, *trials, mode)
			return
		}
		fmt.Printf("\n%d/%d trials inconsistent — this should never happen for %q!\n",
			failures, *trials, mode)
		os.Exit(1)
	}
	fmt.Printf("\nall trials consistent: committed transactions durable, uncommitted rolled back.\n")
}

// attachAndRecover loads a saved DIMM image into a fresh machine (a
// different "process" than the one that crashed), optionally dumps the
// surviving log, runs recovery, and reports what it did.
func attachAndRecover(modeName string, threads int, path string, dump bool) error {
	mode, err := pmemlog.ParseMode(modeName)
	if err != nil {
		return err
	}
	sys, err := buildSystem(mode, threads)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := sys.LoadNVRAM(f); err != nil {
		return err
	}
	if dump {
		entries, err := sys.DumpLog()
		if err != nil {
			return err
		}
		fmt.Printf("surviving log records (%d):\n", len(entries))
		for i, e := range entries {
			kind := [4]string{"?", "header", "update", "commit"}[e.Kind]
			fmt.Printf("  %4d  tx=%-5d thr=%d %-7s addr=%v undo=%#x redo=%#x\n",
				i, e.TxID, e.ThreadID, kind, e.Addr, uint64(e.Undo), uint64(e.Redo))
		}
	}
	rep, err := sys.Recover()
	if err != nil {
		return err
	}
	fmt.Printf("recovered %s image: %d records scanned, %d transactions redone, %d rolled back (%d redo / %d undo writes)\n",
		path, rep.EntriesScanned, len(rep.Committed), len(rep.Uncommitted), rep.RedoWrites, rep.UndoWrites)
	return nil
}

func buildSystem(mode pmemlog.Mode, threads int) (*pmemlog.System, error) {
	cfg := pmemlog.DefaultConfig(mode, threads)
	cfg.Caches.L2.SizeBytes = 256 << 10
	cfg.NVRAMBytes = 64 << 20
	cfg.LogBytes = 1 << 20
	cfg.TrackOracle = true
	return pmemlog.NewSystem(cfg)
}

// runOnce executes the workload; with crashAt > 0 it crashes, recovers and
// verifies, returning an error describing any consistency violation.
func runOnce(mode pmemlog.Mode, benchName string, threads, txns int, crashAt uint64, savePath string) (uint64, error) {
	sys, err := buildSystem(mode, threads)
	if err != nil {
		return 0, err
	}
	w, err := bench.New(benchName, bench.Config{
		Elements: 4096, TxnsPerThread: txns, Threads: threads, Seed: 7,
	})
	if err != nil {
		return 0, err
	}
	if err := w.Setup(sys); err != nil {
		return 0, err
	}
	if crashAt > 0 {
		sys.ScheduleCrash(crashAt)
	}
	err = sys.RunN(w.Run)
	switch {
	case crashAt == 0:
		if err != nil {
			return 0, err
		}
		return sys.WallCycles(), nil
	case !errors.Is(err, pmemlog.ErrCrashed):
		return 0, fmt.Errorf("run ended without crashing: %v", err)
	}
	if savePath != "" {
		f, err := os.Create(savePath)
		if err != nil {
			return 0, err
		}
		if err := sys.SaveNVRAM(f); err != nil {
			f.Close()
			return 0, err
		}
		if err := f.Close(); err != nil {
			return 0, err
		}
		fmt.Printf("saved crashed DIMM image to %s (recover it with -load-image)\n", savePath)
	}
	rep, err := sys.Recover()
	if err != nil {
		return 0, fmt.Errorf("recovery: %w", err)
	}
	if bad := sys.VerifyRecovery(rep, crashAt); len(bad) > 0 {
		return 0, fmt.Errorf("%d violations, first: %s", len(bad), bad[0])
	}
	return 0, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pmrecover:", err)
	os.Exit(1)
}
