package pmemlog

import (
	"bytes"
	"testing"
)

// One recording drives the full design sweep — the trace-based workflow
// McSimA+ users rely on.
func TestTraceSweepAcrossDesigns(t *testing.T) {
	p := tinyParams()
	tr, rec, err := RecordMicro("hash", NonPers, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Ops() == 0 || rec.Transactions != uint64(2*p.TxnsPerThread) {
		t.Fatalf("recording: %d ops, %d txns", tr.Ops(), rec.Transactions)
	}
	var prev Run
	for i, mode := range []Mode{SWUndoClwb, HWL, FWB} {
		r, err := ReplayMicro(tr, "hash", mode, 2, p)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if r.Transactions != rec.Transactions {
			t.Fatalf("%s: replay committed %d txns, recording %d", mode, r.Transactions, rec.Transactions)
		}
		// Same ops, different persistence machinery: instruction counts
		// must differ between sw and hw designs over the SAME trace.
		if i > 0 && mode == HWL && r.Instructions >= prev.Instructions {
			t.Errorf("hwl instructions (%d) not below undo-clwb (%d) on the same trace",
				r.Instructions, prev.Instructions)
		}
		prev = r
	}
}

func TestTraceSerializationThroughFacade(t *testing.T) {
	p := tinyParams()
	tr, _, err := RecordMicro("sps", FWB, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	tr2, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := ReplayMicro(tr, "sps", FWB, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ReplayMicro(tr2, "sps", FWB, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.NVRAMWriteBytes != r2.NVRAMWriteBytes {
		t.Errorf("deserialized trace replays differently: %+v vs %+v", r1.Cycles, r2.Cycles)
	}
}
