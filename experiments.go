package pmemlog

import (
	"fmt"

	"pmemlog/internal/bench"
	"pmemlog/internal/core"
	"pmemlog/internal/mem"
	"pmemlog/internal/nvlog"
	"pmemlog/internal/whisper"
)

// Params sizes an experiment run. The paper's footprints (256 MB – 1 GB)
// are scaled down; only relative results are reported, and the access
// patterns are unchanged.
type Params struct {
	Elements      int // microbenchmark structure size
	TxnsPerThread int
	Values        bench.ValueKind
	Seed          int64

	WhisperRecords int
	WhisperTxns    int

	LogBytes         uint64 // 0 = paper default (4 MB)
	LogBufferEntries int    // -1 = paper default (15)
	NVRAMBytes       uint64 // 0 = default

	// L2Bytes scales the shared cache. The paper's footprints (256 MB –
	// 1 GB) dwarf its 8 MB L2; scaled-down runs must preserve the
	// footprint/cache ratio or the non-pers baseline becomes an in-cache
	// workload the paper never measured. 0 = Table II 8 MB.
	L2Bytes uint64

	// PerThreadLogs switches the hardware designs to distributed
	// per-thread logs (Section III-F; the paper's future-work evaluation).
	PerThreadLogs bool

	// FwbScanInterval overrides the derived FWB scan interval in cycles
	// (0 = the Section IV-D law).
	FwbScanInterval uint64
}

// QuickParams runs in seconds (CI-sized): ~1-2 MB footprints over a
// 256 KB L2, preserving the paper's out-of-cache working-set regime.
func QuickParams() Params {
	return Params{
		Elements: 16384, TxnsPerThread: 150, Seed: 42,
		WhisperRecords: 8192, WhisperTxns: 150,
		LogBufferEntries: -1,
		L2Bytes:          256 << 10,
		LogBytes:         1 << 20,
	}
}

// FullParams is the report-quality size used by cmd/experiments -full:
// ~16-32 MB footprints over a 2 MB L2.
func FullParams() Params {
	return Params{
		Elements: 131072, TxnsPerThread: 400, Seed: 42,
		WhisperRecords: 65536, WhisperTxns: 400,
		LogBufferEntries: -1,
		L2Bytes:          2 << 20,
		NVRAMBytes:       256 << 20,
	}
}

func (p Params) config(mode Mode, threads int) Config {
	cfg := DefaultConfig(mode, threads)
	if p.LogBytes != 0 {
		cfg.LogBytes = p.LogBytes
	}
	if p.LogBufferEntries >= 0 {
		cfg.Memctl.LogBufferEntries = p.LogBufferEntries
	}
	if p.NVRAMBytes != 0 {
		cfg.NVRAMBytes = p.NVRAMBytes
	}
	if p.L2Bytes != 0 {
		cfg.Caches.L2.SizeBytes = p.L2Bytes
	}
	cfg.PerThreadLogs = p.PerThreadLogs
	cfg.FwbScanInterval = p.FwbScanInterval
	return cfg
}

// RunMicro executes one (microbenchmark, mode, threads) cell and returns
// its metrics.
func RunMicro(benchName string, mode Mode, threads int, p Params) (Run, error) {
	w, err := bench.New(benchName, bench.Config{
		Elements:      p.Elements,
		TxnsPerThread: p.TxnsPerThread,
		Threads:       threads,
		Values:        p.Values,
		Seed:          p.Seed,
	})
	if err != nil {
		return Run{}, err
	}
	sys, err := NewSystem(p.config(mode, threads))
	if err != nil {
		return Run{}, err
	}
	if err := w.Setup(sys); err != nil {
		return Run{}, err
	}
	sys.SetBenchName(benchName)
	if err := sys.RunN(w.Run); err != nil {
		return Run{}, fmt.Errorf("%s/%s/%dt: %w", benchName, mode, threads, err)
	}
	return sys.Stats(), nil
}

// RunWhisper executes one (kernel, mode, threads) cell.
func RunWhisper(kernel string, mode Mode, threads int, p Params) (Run, error) {
	w, err := whisper.New(kernel, whisper.Config{
		Records:       p.WhisperRecords,
		TxnsPerThread: p.WhisperTxns,
		Threads:       threads,
		Seed:          p.Seed,
	})
	if err != nil {
		return Run{}, err
	}
	sys, err := NewSystem(p.config(mode, threads))
	if err != nil {
		return Run{}, err
	}
	if err := w.Setup(sys); err != nil {
		return Run{}, err
	}
	sys.SetBenchName(kernel)
	if err := sys.RunN(w.Run); err != nil {
		return Run{}, fmt.Errorf("%s/%s/%dt: %w", kernel, mode, threads, err)
	}
	return sys.Stats(), nil
}

// RunMixedMicro runs several microbenchmarks CONCURRENTLY on one machine,
// threadsPer threads each — the multiprogrammed case where one centralized
// log is shared by unrelated transaction streams (Section II-C's
// multithreading discussion). Returns the combined run metrics.
func RunMixedMicro(benchNames []string, mode Mode, threadsPer int, p Params) (Run, error) {
	total := len(benchNames) * threadsPer
	sys, err := NewSystem(p.config(mode, total))
	if err != nil {
		return Run{}, err
	}
	type slot struct {
		w     bench.Workload
		local int
	}
	plan := make([]slot, total)
	for g, name := range benchNames {
		w, err := bench.New(name, bench.Config{
			Elements:      p.Elements,
			TxnsPerThread: p.TxnsPerThread,
			Threads:       threadsPer,
			Values:        p.Values,
			Seed:          p.Seed + int64(g),
		})
		if err != nil {
			return Run{}, err
		}
		if err := w.Setup(sys); err != nil {
			return Run{}, err
		}
		for i := 0; i < threadsPer; i++ {
			plan[g*threadsPer+i] = slot{w: w, local: i}
		}
	}
	sys.SetBenchName("mixed")
	err = sys.RunN(func(ctx Ctx, id int) {
		plan[id].w.Run(ctx, plan[id].local)
	})
	if err != nil {
		return Run{}, err
	}
	return sys.Stats(), nil
}

// MicroBenchNames lists the Table III microbenchmarks.
func MicroBenchNames() []string { return bench.Names() }

// WhisperNames lists the WHISPER kernels.
func WhisperNames() []string { return whisper.Names() }

// FigureModes is the set of designs plotted in Figures 6-9 (unsafe-base is
// derived from sw-ulog/sw-rlog at reporting time).
func FigureModes() []Mode {
	return []Mode{NonPers, SWUndo, SWRedo, SWUndoClwb, SWRedoClwb, HWUndo, HWRedo, HWL, FWB}
}

// RunMicroGrid runs every (bench, mode, threads) combination and indexes
// the results. progress (optional) is called before each cell.
func RunMicroGrid(benches []string, threadCounts []int, modes []Mode, p Params,
	progress func(bench string, mode Mode, threads int)) (*RunSet, error) {
	rs := NewRunSet()
	for _, b := range benches {
		for _, th := range threadCounts {
			for _, m := range modes {
				if progress != nil {
					progress(b, m, th)
				}
				r, err := RunMicro(b, m, th, p)
				if err != nil {
					return nil, err
				}
				rs.Put(r)
			}
		}
	}
	return rs, nil
}

// RunWhisperGrid runs every (kernel, mode) combination at a fixed thread
// count (the paper reports WHISPER at one configuration).
func RunWhisperGrid(kernels []string, threads int, modes []Mode, p Params,
	progress func(kernel string, mode Mode, threads int)) (*RunSet, error) {
	rs := NewRunSet()
	for _, k := range kernels {
		for _, m := range modes {
			if progress != nil {
				progress(k, m, threads)
			}
			r, err := RunWhisper(k, m, threads, p)
			if err != nil {
				return nil, err
			}
			rs.Put(r)
		}
	}
	return rs, nil
}

// cell formats a metric or "-" when the run is missing.
func gridTable(rs *RunSet, threadCounts []int, modes []Mode,
	metric func(r, base Run) float64) *Table {

	header := []string{"benchmark"}
	for _, m := range modes {
		header = append(header, m.String())
	}
	t := &Table{Header: header}
	for _, b := range rs.Benchmarks() {
		for _, th := range threadCounts {
			base, ok := rs.UnsafeBase(b, th)
			if !ok {
				continue
			}
			row := []interface{}{fmt.Sprintf("%s-%dt", b, th)}
			for _, m := range modes {
				r, ok := rs.Get(b, m.String(), th)
				if !ok {
					row = append(row, "-")
					continue
				}
				row = append(row, metric(r, base))
			}
			t.Add(row...)
		}
	}
	return t
}

// Fig6 builds the transaction-throughput-speedup table (normalized to
// unsafe-base; higher is better).
func Fig6(rs *RunSet, threadCounts []int, modes []Mode) *Table {
	return gridTable(rs, threadCounts, modes, func(r, base Run) float64 { return r.Speedup(base) })
}

// Fig7IPC builds the IPC-speedup table (normalized to unsafe-base).
func Fig7IPC(rs *RunSet, threadCounts []int, modes []Mode) *Table {
	return gridTable(rs, threadCounts, modes, func(r, base Run) float64 { return r.IPCSpeedup(base) })
}

// Fig7Instr builds the instruction-count table (normalized to unsafe-base;
// lower is better).
func Fig7Instr(rs *RunSet, threadCounts []int, modes []Mode) *Table {
	return gridTable(rs, threadCounts, modes, func(r, base Run) float64 { return r.InstrRatio(base) })
}

// Fig8 builds the memory-dynamic-energy-reduction table (normalized to
// unsafe-base; higher is better).
func Fig8(rs *RunSet, threadCounts []int, modes []Mode) *Table {
	return gridTable(rs, threadCounts, modes, func(r, base Run) float64 { return r.EnergyReduction(base) })
}

// Fig9 builds the NVRAM-write-traffic-reduction table (normalized to
// unsafe-base; higher is better).
func Fig9(rs *RunSet, threadCounts []int, modes []Mode) *Table {
	return gridTable(rs, threadCounts, modes, func(r, base Run) float64 { return r.TrafficReduction(base) })
}

// Fig10 builds the WHISPER table: IPC, memory energy reduction, throughput
// speedup, and NVRAM write reduction for fwb vs unsafe-base.
func Fig10(rs *RunSet, threads int) *Table {
	t := &Table{Header: []string{"kernel", "ipc-speedup", "energy-reduction", "tput-speedup", "write-reduction", "vs-non-pers"}}
	for _, k := range rs.Benchmarks() {
		base, ok := rs.UnsafeBase(k, threads)
		if !ok {
			continue
		}
		r, ok := rs.Get(k, "fwb", threads)
		if !ok {
			continue
		}
		vsIdeal := 0.0
		if np, ok := rs.Get(k, "non-pers", threads); ok {
			vsIdeal = r.Speedup(np)
		}
		t.Add(k, r.IPCSpeedup(base), r.EnergyReduction(base), r.Speedup(base),
			r.TrafficReduction(base), vsIdeal)
	}
	return t
}

// Fig11aPoint runs the hash benchmark in fwb mode with one log-buffer size
// (Fig 11(a) sweeps {0, 8, 16, 32, 64, 128, 256}).
func Fig11aPoint(entries int, threads int, p Params) (Run, error) {
	p.LogBufferEntries = entries
	return RunMicro("hash", FWB, threads, p)
}

// Fig11aSizes is the paper's log-buffer sweep (15 is the implementation's
// persistence-bounded size).
func Fig11aSizes() []int { return []int{0, 8, 15, 32, 64, 128, 256} }

// Fig11b returns the FWB scan interval (cycles) required for each log
// size — the paper's frequency law (Section IV-D), e.g. ~3M cycles at 4 MB.
func Fig11b(logSizesBytes []uint64) *Table {
	t := &Table{Header: []string{"log-size-KB", "scan-interval-cycles"}}
	nv := DefaultConfig(FWB, 1).NVRAM
	for _, sz := range logSizesBytes {
		logCfg := nvlog.Config{Base: 0, SizeBytes: sz, Style: nvlog.UndoRedo}
		interval := core.DeriveScanInterval(logCfg, nv, 2)
		t.Add(int(sz>>10), interval)
	}
	return t
}

// Fig11bSizes is the paper's log-size sweep (64 KB .. 16 MB).
func Fig11bSizes() []uint64 {
	var out []uint64
	for kb := uint64(64); kb <= 16<<10; kb *= 2 {
		out = append(out, kb<<10)
	}
	return out
}

// Table1 summarizes the hardware overhead of the design on the configured
// machine (paper Table I). Values derive from the actual configuration:
// the log buffer is LogBufferEntries cache-line slots plus per-slot valid
// masks, and the fwb bits cost one bit per cache line at every level.
func Table1(cfg Config) *Table {
	t := &Table{Header: []string{"mechanism", "logic", "size-bytes"}}
	t.Add("Transaction ID register", "flip-flops", 1)
	t.Add("Log head pointer register", "flip-flops", 8)
	t.Add("Log tail pointer register", "flip-flops", 8)
	logBufBytes := cfg.Memctl.LogBufferEntries*mem.LineSize + cfg.Memctl.LogBufferEntries*4 // slots + valid masks/tags
	t.Add("Log buffer (optional)", "SRAM", logBufBytes)
	l1Lines := int(cfg.Caches.L1.SizeBytes) / mem.LineSize * cfg.Threads
	l2Lines := int(cfg.Caches.L2.SizeBytes) / mem.LineSize
	t.Add("Fwb tag bits (L1s)", "SRAM", (l1Lines+7)/8)
	t.Add("Fwb tag bits (L2)", "SRAM", (l2Lines+7)/8)
	return t
}

// Table2 dumps the machine configuration (paper Table II).
func Table2(cfg Config) *Table {
	t := &Table{Header: []string{"component", "configuration"}}
	t.Add("Cores", fmt.Sprintf("%d threads, %.1f GHz", cfg.Threads, cfg.CPU.ClockGHz))
	t.Add("L1D", fmt.Sprintf("%d KB, %d-way, %d B lines, %d cycles",
		cfg.Caches.L1.SizeBytes>>10, cfg.Caches.L1.Ways, mem.LineSize, cfg.Caches.L1.HitCycles))
	t.Add("L2", fmt.Sprintf("%d MB, %d-way, %d B lines, %d cycles",
		cfg.Caches.L2.SizeBytes>>20, cfg.Caches.L2.Ways, mem.LineSize, cfg.Caches.L2.HitCycles))
	t.Add("Memory controller", fmt.Sprintf("%d/%d-entry read/write queues, %d-entry WCB, %d-entry log buffer",
		cfg.Memctl.ReadQueue, cfg.Memctl.WriteQueue, cfg.Memctl.WCBEntries, cfg.Memctl.LogBufferEntries))
	t.Add("NVRAM", fmt.Sprintf("%d MB, %d banks, %d B rows", cfg.NVRAMBytes>>20, cfg.NVRAM.Banks, cfg.NVRAM.RowBytes))
	t.Add("NVRAM timing", fmt.Sprintf("row hit %d cyc, read conflict %d cyc, write conflict %d cyc",
		cfg.NVRAM.RowHitCycles, cfg.NVRAM.ReadMissCycles, cfg.NVRAM.WriteMissCycles))
	t.Add("NVRAM energy", fmt.Sprintf("rb r/w %.2f/%.2f pJ/bit, array r/w %.2f/%.2f pJ/bit",
		cfg.NVRAM.RowBufReadPJPerBit, cfg.NVRAM.RowBufWritePJPerBit,
		cfg.NVRAM.ArrayReadPJPerBit, cfg.NVRAM.ArrayWritePJPerBit))
	t.Add("Circular log", fmt.Sprintf("%d KB (%d entries of %d B)",
		cfg.LogBytes>>10, (cfg.LogBytes-nvlog.MetaSize)/nvlog.FullEntrySize, nvlog.FullEntrySize))
	return t
}

// Table3 lists the microbenchmarks (paper Table III).
func Table3() *Table {
	t := &Table{Header: []string{"name", "description"}}
	t.Add("hash", "open-chain hash table: search; insert if absent, remove if found")
	t.Add("rbtree", "red-black tree: search; insert if absent, remove if found")
	t.Add("sps", "random swaps between entries of a vector")
	t.Add("btree", "B+ tree: search; insert if absent, remove if found")
	t.Add("ssca2", "transactional SSCA 2.2 kernels over a scale-free graph")
	return t
}

// UnsafeBaseRun re-exports the unsafe-base derivation for reporting.
func UnsafeBaseRun(rs *RunSet, benchName string, threads int) (Run, bool) {
	return rs.UnsafeBase(benchName, threads)
}
