package pmemlog

import (
	"io"

	"pmemlog/internal/bench"
	"pmemlog/internal/sim"
	"pmemlog/internal/trace"
)

// Trace is a recorded workload operation stream (the analogue of the Pin
// traces that drive McSimA+). Record once, replay against any machine
// configuration with identical memory behaviour.
type Trace = trace.Trace

// ReadTrace deserializes a trace written with Trace.WriteTo.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// RecordMicro runs a microbenchmark once while capturing its operation
// stream, returning the trace and the recording run's metrics.
func RecordMicro(benchName string, mode Mode, threads int, p Params) (*Trace, Run, error) {
	w, sys, err := buildMicro(benchName, mode, threads, p)
	if err != nil {
		return nil, Run{}, err
	}
	workers := make([]sim.Worker, threads)
	for i := range workers {
		i := i
		workers[i] = func(ctx Ctx) { w.Run(ctx, i) }
	}
	tr, err := trace.Record(sys, workers)
	if err != nil {
		return nil, Run{}, err
	}
	return tr, sys.Stats(), nil
}

// ReplayMicro replays a trace recorded by RecordMicro against a fresh
// machine of the given design. The benchmark name and parameters must
// match the recording so the Setup population (and therefore every
// recorded address) lines up.
func ReplayMicro(tr *Trace, benchName string, mode Mode, threads int, p Params) (Run, error) {
	_, sys, err := buildMicro(benchName, mode, threads, p)
	if err != nil {
		return Run{}, err
	}
	if err := sys.Run(tr.Workers()); err != nil {
		return Run{}, err
	}
	return sys.Stats(), nil
}

func buildMicro(benchName string, mode Mode, threads int, p Params) (bench.Workload, *System, error) {
	w, err := bench.New(benchName, bench.Config{
		Elements:      p.Elements,
		TxnsPerThread: p.TxnsPerThread,
		Threads:       threads,
		Values:        p.Values,
		Seed:          p.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	sys, err := NewSystem(p.config(mode, threads))
	if err != nil {
		return nil, nil, err
	}
	if err := w.Setup(sys); err != nil {
		return nil, nil, err
	}
	sys.SetBenchName(benchName)
	return w, sys, nil
}
