# Convenience entry points mirroring .github/workflows/ci.yml.

GO ?= go

.PHONY: all build test race lint fmt vet pmlint trace trace-test bench-baseline ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint = everything CI gates on besides the test suite.
lint: fmt vet pmlint

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

pmlint:
	$(GO) run ./cmd/pmlint ./...

# trace records one FWB microbenchmark run and writes a Chrome
# trace_event timeline to trace.json (open in about:tracing or
# ui.perfetto.dev); the per-phase breakdown prints on stdout.
trace:
	$(GO) run ./cmd/pmtrace -bench hash -mode fwb -threads 2 -log-kb 32 -o trace.json

# trace-test is the pmtrace round-trip acceptance test (also part of
# `test`, but gated explicitly so ci fails loudly if the exporter breaks).
trace-test:
	$(GO) test ./cmd/pmtrace

# bench-baseline regenerates the committed microbenchmark grid dump.
# The simulator is deterministic, so a diff here means behavior changed.
bench-baseline:
	$(GO) run ./cmd/experiments -json

ci: build lint test race trace-test
