# Convenience entry points mirroring .github/workflows/ci.yml.

GO ?= go

.PHONY: all build test race lint fmt vet pmlint pmlint-flow trace trace-test bench-baseline perf doctor chaos pulse scope ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint = everything CI gates on besides the test suite.
lint: fmt vet pmlint

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# pmlint runs under a 60s budget: the CFG/dominance engine must stay
# cheap enough for every local gate, so a fixpoint regression that blows
# up analysis time fails the build instead of slowly rotting it.
pmlint:
	timeout 60 $(GO) run ./cmd/pmlint ./...

# pmlint-flow is the CI smoke for the path-sensitive ordering rules
# alone (txnpair, quiesceorder, logbeforedata, ackafterdurable,
# deferredunlock): a fast re-check that the flow engine itself loads,
# fixpoints, and proves the tree clean.
pmlint-flow:
	timeout 60 $(GO) run ./cmd/pmlint -only flow ./...

# trace records one FWB microbenchmark run and writes a Chrome
# trace_event timeline to trace.json (open in about:tracing or
# ui.perfetto.dev); the per-phase breakdown prints on stdout.
trace:
	$(GO) run ./cmd/pmtrace -bench hash -mode fwb -threads 2 -log-kb 32 -o trace.json

# trace-test is the pmtrace round-trip acceptance test (also part of
# `test`, but gated explicitly so ci fails loudly if the exporter breaks).
trace-test:
	$(GO) test ./cmd/pmtrace

# bench-baseline regenerates the committed microbenchmark grid dump.
# The simulator is deterministic, so a diff here means behavior changed.
bench-baseline:
	$(GO) run ./cmd/experiments -json

# perf guards the wall-clock path (DESIGN.md §11): the zero-allocation
# tests on the nvlog append and shard apply hot paths, then a short
# pmperf run writing BENCH_wall.json (baseline vs pipelined + speedup).
# Wall-clock numbers vary by host; the committed BENCH_wall.json is the
# reference, CI uploads each run's report as an artifact.
perf:
	$(GO) test ./internal/nvlog ./internal/server -run 'ZeroAlloc' -count=1
	$(GO) run ./cmd/pmperf -conns 2 -window 16 -duration 500ms -o BENCH_wall.json

# doctor is the flight-recorder smoke (DESIGN.md §12): boot a server,
# push spanned traffic, capture a flight dump, and assert pmdoctor
# renders causal timelines from it. Also part of `test`, gated
# explicitly so ci fails loudly if the forensics pipeline breaks.
doctor:
	$(GO) test ./cmd/pmdoctor -run TestDoctorSmoke -count=1

# chaos is the fixed-seed fault-injection campaign (DESIGN.md §13):
# the full scenario matrix (torn log lines, partial drains, dropped and
# delayed write-backs, bank stalls, combined, network faults) swept
# over 20 seeds. Deterministic — a failure here names the seed that
# replays it exactly. Scratch state (images, flight dumps) and the
# JSON report land in chaos-out/.
chaos:
	mkdir -p chaos-out
	$(GO) run ./cmd/pmchaos -seeds 20 -dir chaos-out -o chaos-out/chaos-report.json

# pulse is the live-telemetry smoke (DESIGN.md §15): the /pulse.json
# schema round-trip, the end-to-end chain (spanned traffic → closed
# window → stage waterfall accounting for the e2e p99 → exemplar
# resolvable in a flight dump → OpenMetrics gauges), and a pmtop -once
# golden frame rendered against a live server. Also part of `test`,
# gated explicitly so ci fails loudly if the operator surface breaks.
pulse:
	$(GO) test ./internal/obs/pulse -run TestPulseSchemaRoundTrip -count=1
	$(GO) test ./internal/server -run 'TestPulseEndToEnd|TestHealthzDegraded' -count=1
	$(GO) test ./cmd/pmtop -run 'TestRenderFixture|TestOnceAgainstLiveServer' -count=1

# scope is the persistence-cost accounting gate (DESIGN.md §16): the
# scope ledger unit tests (zero-alloc steady state under race included),
# the /pulse.json v2 golden round-trip + v1 decode compat + wrap
# forecast, the live e2e (zipfian coalescible above uniform; wrap
# forecast within ±25% of an observed wrap), and the pmscope/pmtop
# analyzer surfaces.
scope:
	$(GO) test -race ./internal/obs/scope -count=1
	$(GO) test ./internal/obs/pulse -run 'TestScopeGoldenRoundTrip|TestDocDecodeV1Compat|TestScopeWrapForecast' -count=1
	$(GO) test ./internal/server -run 'TestScopeCoalescibleZipfVsUniform|TestScopeWrapForecastLive' -count=1
	$(GO) test ./cmd/pmscope ./cmd/pmtop -count=1

ci: build lint pmlint-flow test race trace-test perf doctor chaos pulse scope
