# Convenience entry points mirroring .github/workflows/ci.yml.

GO ?= go

.PHONY: all build test race lint fmt vet pmlint ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint = everything CI gates on besides the test suite.
lint: fmt vet pmlint

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

pmlint:
	$(GO) run ./cmd/pmlint ./...

ci: build lint test race
