package pmemlog

import (
	"fmt"

	"pmemlog/internal/bench"
	"pmemlog/internal/obs"
)

// Observability facade: re-exported tracer types plus a one-call
// "trace a microbenchmark" entry point used by cmd/pmtrace.

type (
	// Tracer is the low-overhead event tracer (see internal/obs).
	Tracer = obs.Tracer
	// TraceEvent is one decoded trace record.
	TraceEvent = obs.Event
)

// TraceMicro runs one microbenchmark cell with an event tracer
// attached, returning the captured events (timestamp-sorted), the ring
// names for export labelling, and the run's aggregate stats. perRing
// bounds each ring's record count (oldest records are overwritten
// beyond it). Population/setup is not traced — recording starts at the
// measured region, like the stats themselves.
func TraceMicro(benchName string, mode Mode, threads int, p Params, perRing int) ([]TraceEvent, []string, Run, error) {
	w, err := bench.New(benchName, bench.Config{
		Elements:      p.Elements,
		TxnsPerThread: p.TxnsPerThread,
		Threads:       threads,
		Values:        p.Values,
		Seed:          p.Seed,
	})
	if err != nil {
		return nil, nil, Run{}, err
	}
	sys, err := NewSystem(p.config(mode, threads))
	if err != nil {
		return nil, nil, Run{}, err
	}
	tr := sys.AttachTracer(perRing)
	if err := w.Setup(sys); err != nil {
		return nil, nil, Run{}, err
	}
	sys.SetBenchName(benchName)
	tr.Enable()
	err = sys.RunN(w.Run)
	tr.Disable()
	if err != nil {
		return nil, nil, Run{}, fmt.Errorf("%s/%s/%dt: %w", benchName, mode, threads, err)
	}
	return tr.Snapshot(), sys.TracerRingNames(), sys.Stats(), nil
}
