// bankledger: the classic atomicity demonstration — multi-account money
// transfers where every transfer must be all-or-nothing. The total balance
// is an invariant that any torn update would break.
//
// The demo runs the same ledger on every evaluated design, crashes each at
// the same point, recovers, and reports which designs preserved the
// invariant — making the paper's "persistence guarantee" column (Table in
// Section VI) directly observable.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"pmemlog"
)

const (
	// The account array (256 KB) exceeds the 128 KB L2 below, so dirty
	// lines of in-flight transfers do steal their way into NVRAM — the
	// exact hazard undo logging exists to repair.
	accounts       = 32768
	initialBalance = 1000
	crashCycle     = 500_000
)

type ledger struct {
	sys  *pmemlog.System
	base pmemlog.Addr
}

func newLedger(sys *pmemlog.System) (*ledger, error) {
	base, err := sys.Heap().AllocLine(accounts * 8)
	if err != nil {
		return nil, err
	}
	setup := sys.SetupCtx()
	for i := 0; i < accounts; i++ {
		setup.Store(base+pmemlog.Addr(i*8), initialBalance)
	}
	return &ledger{sys: sys, base: base}, nil
}

func (l *ledger) account(i int) pmemlog.Addr { return l.base + pmemlog.Addr(i*8) }

// Transfer moves amount from account i to account j atomically.
func (l *ledger) Transfer(ctx pmemlog.Ctx, i, j int, amount pmemlog.Word) {
	ctx.TxBegin()
	defer ctx.TxCommit()
	from := ctx.Load(l.account(i))
	to := ctx.Load(l.account(j))
	ctx.Compute(20) // balance checks, fees
	ctx.Store(l.account(i), from-amount)
	ctx.Store(l.account(j), to+amount)
}

// totalFromImage sums balances straight from the post-crash NVRAM image.
func (l *ledger) totalFromImage() pmemlog.Word {
	var sum pmemlog.Word
	for i := 0; i < accounts; i++ {
		sum += l.sys.Peek(l.account(i))
	}
	return sum
}

func run(mode pmemlog.Mode) (ok bool, detail string) {
	cfg := pmemlog.DefaultConfig(mode, 2)
	cfg.NVRAMBytes = 16 << 20
	cfg.LogBytes = 128 << 10
	cfg.GrowReserveBytes = 1 << 20
	cfg.Caches.L2.SizeBytes = 128 << 10
	sys, err := pmemlog.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	led, err := newLedger(sys)
	if err != nil {
		log.Fatal(err)
	}
	sys.ScheduleCrash(crashCycle)
	err = sys.RunN(func(ctx pmemlog.Ctx, id int) {
		rng := rand.New(rand.NewSource(int64(id) + 9))
		half := accounts / 2
		for {
			// Each thread owns half the accounts (isolation).
			i := id*half + rng.Intn(half)
			j := id*half + rng.Intn(half)
			if i != j {
				led.Transfer(ctx, i, j, pmemlog.Word(1+rng.Intn(50)))
			}
			ctx.Compute(30)
		}
	})
	if !errors.Is(err, pmemlog.ErrCrashed) {
		log.Fatalf("%s: expected crash, got %v", mode, err)
	}
	if mode != pmemlog.NonPers { // non-pers has no log to recover
		if _, err := sys.Recover(); err != nil {
			return false, fmt.Sprintf("recovery failed: %v", err)
		}
	}
	total := led.totalFromImage()
	want := pmemlog.Word(accounts * initialBalance)
	if total != want {
		return false, fmt.Sprintf("money %+d", int64(total)-int64(want))
	}
	return true, "total preserved"
}

func main() {
	fmt.Printf("bank ledger: %d accounts x %d, crash at cycle %d, recover, audit\n\n",
		accounts, initialBalance, crashCycle)
	fmt.Printf("%-12s %-12s %s\n", "design", "consistent", "detail")
	for _, mode := range pmemlog.AllModes() {
		spec := mode.Spec()
		ok, detail := run(mode)
		marker := "OK "
		if !ok {
			marker = "BAD"
		}
		expect := "(guaranteed)"
		if !spec.Persistent {
			expect = "(no guarantee)"
		}
		fmt.Printf("%-12s %s          %s %s\n", mode, marker, detail, expect)
		if spec.Persistent && !ok && mode != pmemlog.SWRedoClwb {
			log.Fatalf("%s claims persistence but lost money", mode)
		}
	}
	fmt.Println("\nDesigns with a persistence guarantee keep the books balanced through")
	fmt.Println("power loss; the unsafe baselines can and do lose or create money.")
}
