// kvstore: a persistent key-value store built on the public API — the kind
// of storage-system workload the paper's introduction motivates. Keys map
// to fixed-size string values through an open-chain hash table whose every
// mutation is one persistent transaction, so any crash leaves the store in
// a prefix-consistent state.
//
// The demo compares the same store on the paper's design (fwb) and on
// software undo logging with clwb, then crash-tests the fwb variant.
package main

import (
	"errors"
	"fmt"
	"log"

	"pmemlog"
)

const (
	nBuckets  = 1024
	valueSize = 64
	keySpace  = 4096
)

// store is a persistent string-keyed KV store over simulated NVRAM.
type store struct {
	sys     *pmemlog.System
	buckets pmemlog.Addr
}

// node layout (words): [key, next, value x 8]
const nodeBytes = (2 + valueSize/8) * 8

func newStore(sys *pmemlog.System) (*store, error) {
	b, err := sys.Heap().AllocLine(nBuckets * 8)
	if err != nil {
		return nil, err
	}
	setup := sys.SetupCtx()
	for i := 0; i < nBuckets; i++ {
		setup.Store(b+pmemlog.Addr(i*8), 0)
	}
	return &store{sys: sys, buckets: b}, nil
}

// bucket range-partitions keys so the two threads' disjoint key blocks
// never share a chain (transactions stay isolated).
func (s *store) bucket(key uint64) pmemlog.Addr {
	idx := key * nBuckets / keySpace % nBuckets
	return s.buckets + pmemlog.Addr(idx*8)
}

// Put inserts or updates key -> value atomically.
func (s *store) Put(ctx pmemlog.Ctx, key uint64, value []byte) {
	if len(value) != valueSize {
		panic("kvstore: fixed 64-byte values")
	}
	ctx.TxBegin()
	defer ctx.TxCommit()
	if node := s.find(ctx, key); node != 0 {
		ctx.StoreBytes(node+16, value)
		return
	}
	node, err := s.sys.Heap().Alloc(nodeBytes)
	if err != nil {
		panic(err)
	}
	head := ctx.Load(s.bucket(key))
	ctx.Store(node, pmemlog.Word(key))
	ctx.Store(node+8, head)
	ctx.StoreBytes(node+16, value)
	ctx.Store(s.bucket(key), pmemlog.Word(node))
}

// Get returns the value for key, or nil.
func (s *store) Get(ctx pmemlog.Ctx, key uint64) []byte {
	node := s.find(ctx, key)
	if node == 0 {
		return nil
	}
	return ctx.LoadBytes(node+16, valueSize)
}

func (s *store) find(ctx pmemlog.Ctx, key uint64) pmemlog.Addr {
	cur := pmemlog.Addr(ctx.Load(s.bucket(key)))
	for cur != 0 {
		if uint64(ctx.Load(cur)) == key {
			return cur
		}
		cur = pmemlog.Addr(ctx.Load(cur + 8))
	}
	return 0
}

func value(key uint64, gen int) []byte {
	v := make([]byte, valueSize)
	copy(v, fmt.Sprintf("key=%d gen=%d", key, gen))
	return v
}

func buildSystem(mode pmemlog.Mode) (*pmemlog.System, *store) {
	cfg := pmemlog.DefaultConfig(mode, 2)
	cfg.NVRAMBytes = 32 << 20
	cfg.LogBytes = 512 << 10
	cfg.GrowReserveBytes = 2 << 20
	cfg.Caches.L2.SizeBytes = 256 << 10
	cfg.TrackOracle = true
	sys, err := pmemlog.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	st, err := newStore(sys)
	if err != nil {
		log.Fatal(err)
	}
	return sys, st
}

func workload(st *store) func(pmemlog.Ctx, int) {
	return func(ctx pmemlog.Ctx, id int) {
		base := uint64(id) * (keySpace / 2)
		for i := 0; i < 400; i++ {
			key := base + uint64(i*31%(keySpace/2))
			st.Put(ctx, key, value(key, i))
			if i%4 == 3 {
				if got := st.Get(ctx, key); got == nil {
					panic("get after put returned nil")
				}
			}
		}
	}
}

func main() {
	// Performance comparison: the paper's design vs software undo+clwb.
	fmt.Println("persistent KV store, 2 threads, 800 transactional puts:")
	for _, mode := range []pmemlog.Mode{pmemlog.FWB, pmemlog.SWUndoClwb, pmemlog.NonPers} {
		sys, st := buildSystem(mode)
		if err := sys.RunN(workload(st)); err != nil {
			log.Fatal(err)
		}
		r := sys.Stats()
		fmt.Printf("  %-10s  %8.0f puts/s   %6d cycles/put   %5.1f KB NVRAM writes\n",
			mode, r.Throughput(), r.Cycles/r.Transactions, float64(r.NVRAMWriteBytes)/1024)
	}

	// Crash test the fwb store.
	sys, st := buildSystem(pmemlog.FWB)
	sys.ScheduleCrash(300_000)
	err := sys.RunN(workload(st))
	if !errors.Is(err, pmemlog.ErrCrashed) {
		log.Fatalf("expected crash, got %v", err)
	}
	rep, err := sys.Recover()
	if err != nil {
		log.Fatal(err)
	}
	if bad := sys.VerifyRecovery(rep, 300_000); len(bad) > 0 {
		log.Fatalf("store inconsistent after crash: %v", bad[0])
	}
	fmt.Printf("\ncrash at cycle 300000: %d committed puts preserved, %d in-flight rolled back — store consistent.\n",
		len(rep.Committed), len(rep.Uncommitted))
}
