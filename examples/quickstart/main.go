// Quickstart: the smallest end-to-end use of the library — run a
// persistent transaction on the paper's full design (hardware undo+redo
// logging + force write-back), crash the machine mid-run, recover, and
// show that committed data survived while the in-flight transaction rolled
// back.
package main

import (
	"errors"
	"fmt"
	"log"

	"pmemlog"
)

func main() {
	// A Table II machine running the fwb design, with crash-consistency
	// verification enabled.
	cfg := pmemlog.DefaultConfig(pmemlog.FWB, 1)
	cfg.NVRAMBytes = 16 << 20
	cfg.LogBytes = 64 << 10
	cfg.GrowReserveBytes = 1 << 20
	cfg.TrackOracle = true
	sys, err := pmemlog.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Two persistent counters.
	a, err := sys.Heap().Alloc(8)
	if err != nil {
		log.Fatal(err)
	}
	b, err := sys.Heap().Alloc(8)
	if err != nil {
		log.Fatal(err)
	}
	setup := sys.SetupCtx()
	setup.Store(a, 0)
	setup.Store(b, 0)

	// Crash the machine mid-run.
	const crashAt = 100_000
	sys.ScheduleCrash(crashAt)

	err = sys.RunN(func(ctx pmemlog.Ctx, id int) {
		for i := 0; ; i++ {
			ctx.TxBegin()
			// Atomically increment both counters: after any crash they
			// must never disagree.
			ctx.Store(a, ctx.Load(a)+1)
			ctx.Compute(50)
			ctx.Store(b, ctx.Load(b)+1)
			ctx.TxCommit()
		}
	})
	if !errors.Is(err, pmemlog.ErrCrashed) {
		log.Fatalf("expected a crash, got: %v", err)
	}
	fmt.Printf("power lost at cycle %d\n", crashAt)

	// Recover: replay the circular undo+redo log against the NVRAM image.
	rep, err := sys.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery: %d log records scanned, %d transactions redone, %d rolled back\n",
		rep.EntriesScanned, len(rep.Committed), len(rep.Uncommitted))

	va, vb := sys.Peek(a), sys.Peek(b)
	fmt.Printf("counters after recovery: a=%d b=%d\n", va, vb)
	if va != vb {
		log.Fatal("ATOMICITY VIOLATED: counters disagree")
	}
	if bad := sys.VerifyRecovery(rep, crashAt); len(bad) > 0 {
		log.Fatalf("consistency violations: %v", bad)
	}
	fmt.Println("atomicity and durability verified against the oracle.")
}
