// logsweep: the paper's Figure 11 sensitivity studies as a standalone
// program — (a) how system throughput responds to the volatile log buffer
// size, including the persistence-bounded 15-entry design point, and
// (b) how the required FWB scan interval grows with the circular log size.
package main

import (
	"fmt"
	"log"

	"pmemlog"
)

func main() {
	p := pmemlog.QuickParams()

	fmt.Println("Fig 11(a): throughput vs log buffer size (hash, fwb)")
	fmt.Println("  the paper bounds the buffer at 15 entries: beyond that, records")
	fmt.Println("  could outlive a store's cache traversal and break log-before-data.")
	var base float64
	for _, n := range pmemlog.Fig11aSizes() {
		r, err := pmemlog.Fig11aPoint(n, 1, p)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = r.Throughput()
		}
		note := ""
		if n == 15 {
			note = "  <- persistence-bounded design point"
		}
		if n > 15 {
			note = "  (persistence no longer guaranteed)"
		}
		fmt.Printf("  %3d entries: %9.0f tx/s  (%.2fx)%s\n", n, r.Throughput(), r.Throughput()/base, note)
	}

	fmt.Println()
	fmt.Println("Fig 11(b): required FWB scan interval vs log size")
	fmt.Println("  interval = fill time at worst-case NVRAM append bandwidth / 2")
	for _, sz := range pmemlog.Fig11bSizes() {
		t := pmemlog.Fig11b([]uint64{sz})
		fmt.Printf("  %6d KB log: every %s cycles\n", sz>>10, t.Rows[0][1])
	}
	fmt.Println()
	fmt.Println("  (the paper: a 4 MB log needs a forced write-back pass roughly")
	fmt.Println("   every three million cycles; the tag scan then costs a few")
	fmt.Println("   percent of cache bandwidth.)")
}
