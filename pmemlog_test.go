package pmemlog

import (
	"errors"
	"strings"
	"testing"
)

func tinyParams() Params {
	p := QuickParams()
	p.Elements = 8192 // footprint exceeds the 128 KB test L2 (out-of-cache regime)
	p.TxnsPerThread = 80
	p.WhisperRecords = 2048
	p.WhisperTxns = 80
	p.LogBytes = 256 << 10
	p.L2Bytes = 128 << 10
	return p
}

func TestPublicQuickstart(t *testing.T) {
	cfg := DefaultConfig(FWB, 1)
	cfg.NVRAMBytes = 16 << 20
	cfg.LogBytes = 64 << 10
	cfg.GrowReserveBytes = 1 << 20
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sys.Heap().Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	err = sys.RunN(func(ctx Ctx, id int) {
		ctx.TxBegin()
		ctx.Store(a, 42)
		ctx.TxCommit()
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Peek(a) == 42 {
		// The value may still be cached (steal pending) — both states are
		// legal; what matters is Stats and that no error occurred.
		t.Log("store already persisted")
	}
	if sys.Stats().Transactions != 1 {
		t.Error("transaction not counted")
	}
}

func TestParseAndListModes(t *testing.T) {
	if len(AllModes()) != 9 {
		t.Errorf("expected 9 modes, got %d", len(AllModes()))
	}
	m, err := ParseMode("fwb")
	if err != nil || m != FWB {
		t.Errorf("ParseMode(fwb) = %v, %v", m, err)
	}
}

func TestRunMicroSingleCell(t *testing.T) {
	p := tinyParams()
	r, err := RunMicro("hash", FWB, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Transactions != uint64(p.TxnsPerThread) || r.Benchmark != "hash" || r.Mode != "fwb" {
		t.Errorf("run: %+v", r)
	}
}

func TestRunWhisperSingleCell(t *testing.T) {
	p := tinyParams()
	r, err := RunWhisper("ycsb", FWB, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Transactions != uint64(2*p.WhisperTxns) {
		t.Errorf("transactions = %d", r.Transactions)
	}
}

// TestFigureShapes is the headline reproduction check at test scale: the
// paper's qualitative results must hold on a small grid.
func TestFigureShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run")
	}
	p := tinyParams()
	modes := FigureModes()
	rs, err := RunMicroGrid([]string{"hash", "sps"}, []int{1}, modes, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []string{"hash", "sps"} {
		base, ok := rs.UnsafeBase(b, 1)
		if !ok {
			t.Fatalf("no unsafe-base for %s", b)
		}
		fwb, _ := rs.Get(b, "fwb", 1)
		undoClwb, _ := rs.Get(b, "undo-clwb", 1)
		redoClwb, _ := rs.Get(b, "redo-clwb", 1)
		nonPers, _ := rs.Get(b, "non-pers", 1)

		// Paper Fig 6: fwb beats the persistent software designs.
		if fwb.Speedup(base) <= undoClwb.Speedup(base) {
			t.Errorf("%s: fwb (%.2f) not faster than undo-clwb (%.2f)",
				b, fwb.Speedup(base), undoClwb.Speedup(base))
		}
		if fwb.Speedup(base) <= redoClwb.Speedup(base) {
			t.Errorf("%s: fwb (%.2f) not faster than redo-clwb (%.2f)",
				b, fwb.Speedup(base), redoClwb.Speedup(base))
		}
		// Paper Fig 6: sw persistent designs lose throughput vs non-pers.
		if undoClwb.Speedup(nonPers) >= 1 {
			t.Errorf("%s: undo-clwb not slower than non-pers", b)
		}
		// Paper Fig 7: sw logging inflates instructions; fwb stays ~30%.
		if undoClwb.InstrRatio(nonPers) < 1.3 {
			t.Errorf("%s: sw instr ratio %.2f too small", b, undoClwb.InstrRatio(nonPers))
		}
		// fwb only pays tx_begin/tx_commit instrumentation (paper: ~30%
		// overall; small-transaction benchmarks sit higher).
		if ratio := fwb.InstrRatio(nonPers); ratio > 2.0 || ratio < 1.0 {
			t.Errorf("%s: fwb instr ratio %.2f outside (1.0, 2.0)", b, ratio)
		}
		// Paper Fig 9: fwb cuts NVRAM write traffic vs persistent sw.
		if fwb.NVRAMWriteBytes >= undoClwb.NVRAMWriteBytes {
			t.Errorf("%s: fwb writes (%d) not below undo-clwb (%d)",
				b, fwb.NVRAMWriteBytes, undoClwb.NVRAMWriteBytes)
		}
		t.Logf("%s: fwb speedup %.2fx vs unsafe-base, %.2fx vs best-sw-persistent, %.0f%% of non-pers",
			b, fwb.Speedup(base),
			fwb.Speedup(bestOf(undoClwb, redoClwb)),
			100*fwb.Speedup(nonPers))
	}

	// Figure tables render without error.
	for _, tab := range []*Table{
		Fig6(rs, []int{1}, modes), Fig7IPC(rs, []int{1}, modes),
		Fig7Instr(rs, []int{1}, modes), Fig8(rs, []int{1}, modes), Fig9(rs, []int{1}, modes),
	} {
		if !strings.Contains(tab.String(), "hash-1t") {
			t.Error("figure table missing rows")
		}
	}
}

func bestOf(a, b Run) Run {
	if a.Throughput() >= b.Throughput() {
		return a
	}
	return b
}

func TestFig11aMonotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	p := tinyParams()
	r0, err := Fig11aPoint(0, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	r15, err := Fig11aPoint(15, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	// The paper: buffering improves throughput over the unbuffered design.
	if r15.Throughput() <= r0.Throughput() {
		t.Errorf("15-entry log buffer (%.0f tps) not faster than unbuffered (%.0f tps)",
			r15.Throughput(), r0.Throughput())
	}
}

func TestFig11bLaw(t *testing.T) {
	tab := Fig11b(Fig11bSizes())
	if len(tab.Rows) != len(Fig11bSizes()) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Interval grows monotonically with log size.
	prev := ""
	_ = prev
	var last uint64
	for i, row := range tab.Rows {
		var v uint64
		if _, err := fmtSscan(row[1], &v); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if v <= last {
			t.Errorf("interval not increasing at row %d", i)
		}
		last = v
	}
}

func fmtSscan(s string, v *uint64) (int, error) {
	var x uint64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errors.New("not a number: " + s)
		}
		x = x*10 + uint64(c-'0')
	}
	*v = x
	return 1, nil
}

func TestTables(t *testing.T) {
	cfg := DefaultConfig(FWB, 8)
	if !strings.Contains(Table1(cfg).String(), "Log buffer") {
		t.Error("Table1 incomplete")
	}
	if !strings.Contains(Table2(cfg).String(), "NVRAM") {
		t.Error("Table2 incomplete")
	}
	if !strings.Contains(Table3().String(), "rbtree") {
		t.Error("Table3 incomplete")
	}
}

func TestCrashRecoveryThroughPublicAPI(t *testing.T) {
	cfg := DefaultConfig(FWB, 1)
	cfg.NVRAMBytes = 16 << 20
	cfg.LogBytes = 64 << 10
	cfg.GrowReserveBytes = 1 << 20
	cfg.TrackOracle = true
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := sys.Heap().Alloc(8)
	sys.Poke(a, 1)
	sys.ScheduleCrash(50_000)
	err = sys.RunN(func(ctx Ctx, id int) {
		for i := 0; i < 10000; i++ {
			ctx.TxBegin()
			v := ctx.Load(a)
			ctx.Store(a, v+1)
			ctx.TxCommit()
		}
	})
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}
	rep, err := sys.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if bad := sys.VerifyRecovery(rep, 50_000); len(bad) != 0 {
		t.Fatalf("violations: %v", bad[0])
	}
}

// A multiprogrammed mix shares one machine (and, for hardware designs, one
// centralized log) across unrelated transaction streams.
func TestRunMixedMicro(t *testing.T) {
	p := tinyParams()
	p.TxnsPerThread = 40
	r, err := RunMixedMicro([]string{"hash", "sps"}, FWB, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Transactions != 4*40 {
		t.Errorf("mixed transactions = %d, want 160", r.Transactions)
	}
	if r.Benchmark != "mixed" {
		t.Errorf("benchmark label = %q", r.Benchmark)
	}
	// The same mix must also hold up under crash/recovery.
	total := r.Cycles
	cfg := p.config(FWB, 4)
	cfg.TrackOracle = true
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = sys // (direct mixed-crash coverage lives in the sim tests; here we
	// only assert the mixed harness runs to completion deterministically)
	r2, err := RunMixedMicro([]string{"hash", "sps"}, FWB, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cycles != total {
		t.Errorf("mixed run nondeterministic: %d vs %d", r2.Cycles, total)
	}
}
