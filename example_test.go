package pmemlog_test

import (
	"errors"
	"fmt"

	"pmemlog"
)

// The smallest complete use of the library: one persistent transaction on
// the paper's full design.
func Example() {
	cfg := pmemlog.DefaultConfig(pmemlog.FWB, 1)
	cfg.NVRAMBytes = 16 << 20
	cfg.LogBytes = 64 << 10
	cfg.GrowReserveBytes = 1 << 20
	sys, err := pmemlog.NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	a, _ := sys.Heap().Alloc(8)
	err = sys.RunN(func(ctx pmemlog.Ctx, id int) {
		ctx.TxBegin()
		ctx.Store(a, 42)
		ctx.TxCommit()
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("committed transactions:", sys.Stats().Transactions)
	// Output: committed transactions: 1
}

// Crash the machine mid-transaction and recover: committed work survives,
// in-flight work rolls back.
func ExampleSystem_Recover() {
	cfg := pmemlog.DefaultConfig(pmemlog.FWB, 1)
	cfg.NVRAMBytes = 16 << 20
	cfg.LogBytes = 64 << 10
	cfg.GrowReserveBytes = 1 << 20
	cfg.TrackOracle = true
	sys, _ := pmemlog.NewSystem(cfg)
	a, _ := sys.Heap().Alloc(8)
	b, _ := sys.Heap().Alloc(8)
	sys.Poke(a, 0)
	sys.Poke(b, 0)

	sys.ScheduleCrash(25_000)
	err := sys.RunN(func(ctx pmemlog.Ctx, id int) {
		for {
			ctx.TxBegin()
			ctx.Store(a, ctx.Load(a)+1)
			ctx.Store(b, ctx.Load(b)+1)
			ctx.TxCommit()
		}
	})
	fmt.Println("crashed:", errors.Is(err, pmemlog.ErrCrashed))

	if _, err := sys.Recover(); err != nil {
		panic(err)
	}
	fmt.Println("counters equal after recovery:", sys.Peek(a) == sys.Peek(b))
	// Output:
	// crashed: true
	// counters equal after recovery: true
}

// The Section IV-C persistence bound on the volatile log buffer: with the
// Table II cache latencies it is the paper's 15-entry design point.
func ExampleLogBufferBound() {
	cfg := pmemlog.DefaultConfig(pmemlog.FWB, 8)
	fmt.Println("max safe log buffer entries:", pmemlog.LogBufferBound(cfg))
	// Output: max safe log buffer entries: 15
}
